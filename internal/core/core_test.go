package core

import (
	"math/rand"
	"strings"
	"testing"

	"mlimp/internal/baseline"
	"mlimp/internal/gnn"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/sched"
	"mlimp/internal/stats"
)

func collabWorkload(t *testing.T, seed int64, batches, batchSize int) *gnn.Workload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, ok := graph.DatasetByName("ogbl-collab")
	if !ok {
		t.Fatal("dataset missing")
	}
	m := gnn.NewGCN(rng, d.InputFeat, d.HiddenFeat, 3)
	return gnn.BuildWorkload(rng, d, m, batches, batchSize)
}

func TestNewDefaults(t *testing.T) {
	s := New(nil)
	if len(s.Sys.Targets()) != 3 {
		t.Error("default system should enable all three memories")
	}
	if s.Scheduler.Name() != "global" {
		t.Errorf("default scheduler = %s", s.Scheduler.Name())
	}
	s2 := New([]isa.Target{isa.SRAM}, WithScheduler(sched.NewAdaptive()))
	if len(s2.Sys.Targets()) != 1 || s2.Scheduler.Name() != "adaptive" {
		t.Error("options not applied")
	}
}

func TestRunProducesConsistentReport(t *testing.T) {
	w := collabWorkload(t, 1, 1, 8)
	s := New(nil)
	jobs := w.AllJobs(predict.Oracle{}, s.Sys)
	rep := s.Run(jobs)
	if len(rep.Result.Assignments) != len(jobs) {
		t.Fatalf("ran %d of %d jobs", len(rep.Result.Assignments), len(jobs))
	}
	if rep.Makespan() <= 0 {
		t.Fatal("bad makespan")
	}
	total := 0
	for _, n := range rep.TargetJobs {
		total += n
	}
	if total != len(jobs) {
		t.Errorf("target job counts sum to %d", total)
	}
	if rep.KindTime["spmm"] <= 0 || rep.KindTime["gemm"] <= 0 || rep.KindTime["vadd"] <= 0 {
		t.Errorf("kind times missing: %v", rep.KindTime)
	}
	if rep.Energy.TotalJ() <= 0 {
		t.Error("no energy accounted")
	}
	if !strings.Contains(rep.String(), "makespan") {
		t.Error("report render wrong")
	}
}

func TestMLIMPBeatsGPUAndCPUOnGNN(t *testing.T) {
	// The headline result: MLIMP speeds up GNN inference over the
	// GPU+CPU baseline (4.80x geomean in the paper) and vastly over
	// CPU-only (241x). With the scaled stand-ins we require >2x vs GPU
	// and >30x vs CPU; EXPERIMENTS.md records the measured values.
	w := collabWorkload(t, 2, 2, 16)
	s := New(nil)
	jobs := w.AllJobs(predict.Oracle{}, s.Sys)
	rep := s.Run(jobs)
	gpu := Baseline(baseline.TitanXP(), w)
	cpu := Baseline(baseline.XeonE5(), w)
	gpuSpeedup := float64(gpu.Total) / float64(rep.Makespan())
	cpuSpeedup := float64(cpu.Total) / float64(rep.Makespan())
	if gpuSpeedup < 2 {
		t.Errorf("GPU speedup = %.2f, want > 2", gpuSpeedup)
	}
	if cpuSpeedup < 30 {
		t.Errorf("CPU speedup = %.1f, want > 30", cpuSpeedup)
	}
	if cpuSpeedup < gpuSpeedup {
		t.Error("CPU must be slower than GPU on GNN inference")
	}
}

func TestEnergyAdvantage(t *testing.T) {
	// Figure 14: ~5x better energy than the GPU.
	w := collabWorkload(t, 3, 2, 16)
	s := New(nil)
	rep := s.Run(w.AllJobs(predict.Oracle{}, s.Sys))
	gpu := Baseline(baseline.TitanXP(), w)
	ratio := gpu.EnergyJ / rep.Energy.TotalJ()
	if ratio < 2 || ratio > 20 {
		t.Errorf("energy advantage = %.2fx, want the ~5x regime", ratio)
	}
}

func TestBaselineBreakdownHasMemcpy(t *testing.T) {
	// Figure 12: GPU execution pays a transfer component; CPU does not.
	w := collabWorkload(t, 4, 1, 8)
	gpu := Baseline(baseline.TitanXP(), w)
	if gpu.KindTime["memcpy"] <= 0 {
		t.Error("GPU baseline must include memcpy time")
	}
	cpu := Baseline(baseline.XeonE5(), w)
	if cpu.KindTime["memcpy"] != 0 {
		t.Error("CPU baseline must not include memcpy time")
	}
	for _, k := range []string{"spmm", "gemm", "vadd"} {
		if gpu.KindTime[k] <= 0 || cpu.KindTime[k] <= 0 {
			t.Errorf("missing kernel %s in baseline breakdown", k)
		}
	}
}

func TestKernelSpeedups(t *testing.T) {
	// Figure 11: per-kernel speedup distributions vs the GPU. All three
	// kernel families must be present with positive speedups, and the
	// compute-parallel kernels (gemm, spmm) should show a benefit in
	// the mean.
	w := collabWorkload(t, 5, 2, 16)
	s := New(nil)
	rep := s.Run(w.AllJobs(predict.Oracle{}, s.Sys))
	sp := KernelSpeedups(rep, baseline.TitanXP(), w)
	for _, k := range []string{"spmm", "gemm", "vadd"} {
		if len(sp[k]) == 0 {
			t.Fatalf("no %s speedup samples", k)
		}
		for _, v := range sp[k] {
			if v <= 0 {
				t.Fatalf("%s: non-positive speedup", k)
			}
		}
	}
	if stats.Mean(sp["spmm"]) <= 0.3 {
		t.Errorf("spmm mean speedup = %.2f, implausibly low", stats.Mean(sp["spmm"]))
	}
}

func TestOracleFractionBeatsNaive(t *testing.T) {
	// Figure 16: the MLIMP scheduler achieves a far higher fraction of
	// the oracle throughput than naive LJF (77% vs 34% in the paper).
	w := collabWorkload(t, 6, 2, 16)
	s := New(nil)
	jobs := w.AllJobs(predict.Oracle{}, s.Sys)
	rep := s.Run(jobs)
	frac := s.OracleFraction(jobs, rep)

	naive := New(nil, WithScheduler(sched.LJF{Strict: true}))
	nrep := naive.Run(jobs)
	nfrac := naive.OracleFraction(jobs, nrep)
	if frac <= nfrac {
		t.Errorf("MLIMP fraction %.2f <= naive %.2f", frac, nfrac)
	}
	if frac < 0.3 {
		t.Errorf("MLIMP fraction %.2f implausibly low", frac)
	}
}
