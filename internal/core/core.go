// Package core assembles the MLIMP system — the public entry point of
// this library. A core.System owns the configured memory layers, the
// scheduler, and the shared DDR4 model; Run schedules and simulates a
// job batch and returns a report with makespan, per-kernel breakdown,
// utilisation, oracle fraction, and energy. Baseline runs the same GNN
// workload on the CPU/GPU roofline models for the Figure 11-14
// comparisons.
package core

import (
	"fmt"
	"sort"
	"strings"

	"mlimp/internal/baseline"
	"mlimp/internal/energy"
	"mlimp/internal/event"
	"mlimp/internal/gnn"
	"mlimp/internal/isa"
	"mlimp/internal/sched"
)

// System is a configured MLIMP machine.
type System struct {
	Sys       *sched.System
	Scheduler sched.Scheduler
}

// Option configures New.
type Option func(*System)

// WithScheduler selects the job scheduler (default: global).
func WithScheduler(s sched.Scheduler) Option {
	return func(sys *System) { sys.Scheduler = s }
}

// New builds an MLIMP system over the given memory layers. With no
// targets, all three Table III memories are enabled.
func New(targets []isa.Target, opts ...Option) *System {
	if len(targets) == 0 {
		targets = isa.Targets
	}
	s := &System{Sys: sched.NewSystem(targets...), Scheduler: sched.NewGlobal()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Report is the outcome of running one batch.
type Report struct {
	Result *sched.Result
	Energy energy.Breakdown
	// KindTime sums job durations per kernel kind (Figures 12/13).
	KindTime map[string]event.Time
	// TargetJobs counts placements per layer.
	TargetJobs map[isa.Target]int
}

// Makespan is the batch completion time.
func (r *Report) Makespan() event.Time { return r.Result.Makespan }

// String renders a compact report.
func (r *Report) String() string {
	var kinds []string
	for k := range r.KindTime {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan=%.3fms energy=%.3gJ", r.Makespan().Millis(), r.Energy.TotalJ())
	for _, k := range kinds {
		fmt.Fprintf(&sb, " %s=%.3fms", k, r.KindTime[k].Millis())
	}
	return sb.String()
}

// Run schedules and simulates a batch of jobs.
func (s *System) Run(jobs []*sched.Job) *Report {
	res := s.Scheduler.Schedule(s.Sys, jobs)
	rep := &Report{
		Result:     res,
		Energy:     energy.OfResult(s.Sys, res),
		KindTime:   map[string]event.Time{},
		TargetJobs: map[isa.Target]int{},
	}
	for _, a := range res.Assignments {
		rep.KindTime[a.Job.Kind] += a.End - a.Start
		rep.TargetJobs[a.Target]++
	}
	return rep
}

// OracleFraction reports a result's throughput relative to the perfect
// per-layer balance (Figure 16).
func (s *System) OracleFraction(jobs []*sched.Job, rep *Report) float64 {
	return sched.OracleFraction(s.Sys, jobs, rep.Result)
}

// BaselineReport is a conventional-platform execution of the same GNN
// workload: kernels run back to back on one device (the CUDA-stream
// model: one kernel at a time, transfers on the same queue).
type BaselineReport struct {
	Device   baseline.Device
	Total    event.Time
	KindTime map[string]event.Time
	EnergyJ  float64
}

// Baseline runs a GNN workload's kernel stream on a conventional device
// the way the PyTorch/PyG stack does: per batch, the input features and
// adjacency transfer to the device once (the "memcpy" component of
// Figures 12/13), then the batched per-layer kernels run back to back
// with intermediates resident on the device.
func Baseline(dev baseline.Device, w *gnn.Workload) *BaselineReport {
	rep := &BaselineReport{Device: dev, KindTime: map[string]event.Time{}}
	add := func(kind string, t event.Time) {
		rep.KindTime[kind] += t
		rep.Total += t
	}
	for _, batch := range w.Batches {
		var nodes, nnz int64
		for _, sg := range batch {
			nodes += int64(sg.NumNodes())
			nnz += int64(sg.NNZ())
		}
		// Features (n x f0 at 2 B) plus CSR adjacency (~8 B per edge).
		transfer := nodes*int64(w.Model.Layers[0].In)*2 + nnz*8
		add("memcpy", dev.TransferTime(transfer))
		for _, spec := range w.Model.Layers {
			// Batched execution: PyG runs one block-diagonal SpMM and
			// one stacked GEMM per layer for the whole batch.
			add("spmm", dev.SpMMTime(int(nnz), int(nodes), spec.In))
			add("gemm", dev.GEMMTime(int(nodes), spec.In, spec.Out))
			add("vadd", dev.VaddTime(int(nodes)*spec.Out))
		}
	}
	rep.EnergyJ = dev.EnergyJ(rep.Total, rep.Total)
	return rep
}

// KernelSpeedups returns the per-kernel speedup distribution of an MLIMP
// run against a baseline device executing the same jobs (Figure 11): for
// each MLIMP assignment, the baseline time of that exact kernel divided
// by the simulated in-memory time.
func KernelSpeedups(rep *Report, dev baseline.Device, w *gnn.Workload) map[string][]float64 {
	// Rebuild the baseline time of each job from its name, which the gnn
	// package encodes deterministically.
	subByQuery := map[int]int{} // query -> node count index
	nnzByQuery := map[int]int{}
	for _, sg := range w.Subgraphs() {
		subByQuery[sg.Query] = sg.NumNodes()
		nnzByQuery[sg.Query] = sg.NNZ()
	}
	out := map[string][]float64{}
	for _, a := range rep.Result.Assignments {
		// Per-kernel baseline times include the kernel's own operand
		// transfer: standalone (unbatched) execution must move its data
		// to the device, exactly as the MLIMP job times include their
		// DDR streaming.
		var base event.Time
		switch a.Job.Kind {
		case "spmm":
			var q, l int
			if _, err := fmt.Sscanf(a.Job.Name, "spmm-q%d-l%d", &q, &l); err != nil {
				continue
			}
			n, nnz, f := subByQuery[q], nnzByQuery[q], w.Model.Layers[l].In
			base = dev.SpMMTime(nnz, n, f) + dev.TransferTime(int64(n)*int64(f)*2+int64(nnz)*8)
		case "gemm":
			var r, k, c int
			if _, err := fmt.Sscanf(a.Job.Name, "gemm-%dx%dx%d", &r, &k, &c); err != nil {
				continue
			}
			base = dev.GEMMTime(r, k, c) + dev.TransferTime(2*(int64(r)*int64(k)+int64(k)*int64(c)))
		case "vadd":
			var n int
			if _, err := fmt.Sscanf(a.Job.Name, "vadd-%d", &n); err != nil {
				continue
			}
			base = dev.VaddTime(n) + dev.TransferTime(4*int64(n))
		default:
			continue
		}
		dur := a.End - a.Start
		if dur > 0 {
			out[a.Job.Kind] = append(out[a.Job.Kind], float64(base)/float64(dur))
		}
	}
	return out
}
