package kernels

import (
	"math"
	"math/rand"
	"testing"

	"mlimp/internal/fixed"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/mem"
	"mlimp/internal/tensor"
)

func randomCSR(rng *rand.Rand, rows, cols, nnz int) *tensor.CSR {
	var coords []tensor.Coord
	for i := 0; i < nnz; i++ {
		coords = append(coords, tensor.Coord{
			Row: rng.Intn(rows), Col: rng.Intn(cols),
			Val: fixed.FromFloat(rng.Float64()*0.5 + 0.1),
		})
	}
	return tensor.FromCOO(rows, cols, coords)
}

func TestSpMMEstimateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomCSR(rng, 100, 100, 400)
	est := SpMM(mem.SRAMConfig, a, 128, 64, true)
	if est.Cycles <= 0 {
		t.Fatal("non-positive cycles")
	}
	if est.LoadBytes < int64(100*128*2) {
		t.Error("load bytes must include B")
	}
	if est.StoreBytes != 100*128*2 {
		t.Errorf("store bytes = %d", est.StoreBytes)
	}
	if est.Iterations != 1 {
		t.Errorf("iterations = %d", est.Iterations)
	}
}

func TestSpMMMoreArraysIsFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomCSR(rng, 400, 400, 4000)
	for _, cfg := range []mem.Config{mem.SRAMConfig, mem.DRAMConfig, mem.ReRAMConfig} {
		small := SpMM(cfg, a, 128, 2, true)
		large := SpMM(cfg, a, 128, 64, true)
		if large.Cycles > small.Cycles {
			t.Errorf("%s: more arrays slower: %d -> %d", cfg.Target, small.Cycles, large.Cycles)
		}
	}
}

func TestSpMMIteratesWhenWorkingSetDoesNotFit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(rng, 2000, 2000, 8000)
	// B = 2000x256x2B = 1 MB; one SRAM array = 8 KB, so 1 array forces
	// 128 iterations.
	est := SpMM(mem.SRAMConfig, a, 256, 1, true)
	if est.Iterations < 2 {
		t.Errorf("iterations = %d, want > 1", est.Iterations)
	}
	if est.Replicas != 1 {
		t.Errorf("replicas = %d", est.Replicas)
	}
}

func TestSpMMReplicationKicksIn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomCSR(rng, 64, 64, 512)
	// B = 64x64x2 = 8 KB = exactly one SRAM array; 16 arrays -> 16
	// replicas.
	est := SpMM(mem.SRAMConfig, a, 64, 16, true)
	if est.Replicas != 16 {
		t.Errorf("replicas = %d, want 16", est.Replicas)
	}
	if est.RepUnit != 1 {
		t.Errorf("repunit = %d, want 1", est.RepUnit)
	}
}

func TestSpMMWeightedCostsMoreThanBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCSR(rng, 100, 100, 600)
	w := SpMM(mem.SRAMConfig, a, 128, 8, true)
	b := SpMM(mem.SRAMConfig, a, 128, 8, false)
	if w.Cycles <= b.Cycles {
		t.Errorf("weighted %d <= binary %d", w.Cycles, b.Cycles)
	}
}

func TestSpMMDRAMUnderutilisedByNarrowFeatures(t *testing.T) {
	// Paper: "their SIMD slots cannot be fully utilized by GNNs of a
	// small feature vector size" — with equal array counts DRAM must
	// take more cycles than SRAM (and its clock is 8x slower on top).
	rng := rand.New(rand.NewSource(6))
	a := randomCSR(rng, 500, 500, 5000)
	s := SpMM(mem.SRAMConfig, a, 128, 8, true)
	d := SpMM(mem.DRAMConfig, a, 128, 8, true)
	if d.Cycles <= s.Cycles {
		t.Errorf("DRAM %d <= SRAM %d cycles", d.Cycles, s.Cycles)
	}
}

func TestGEMMEstimates(t *testing.T) {
	for _, cfg := range []mem.Config{mem.SRAMConfig, mem.DRAMConfig, mem.ReRAMConfig} {
		est := GEMM(cfg, 64, 128, 256, 32)
		if est.Cycles <= 0 {
			t.Errorf("%s: non-positive cycles", cfg.Target)
		}
		if est.LoadBytes != int64(64*128+128*256)*2 {
			t.Errorf("%s: load bytes = %d", cfg.Target, est.LoadBytes)
		}
		if est.StoreBytes != 64*256*2 {
			t.Errorf("%s: store bytes = %d", cfg.Target, est.StoreBytes)
		}
	}
	// ReRAM pays one-time weight programming.
	if GEMM(mem.ReRAMConfig, 64, 128, 256, 32).ProgramBytes != 128*256*2 {
		t.Error("ReRAM GEMM should bill weight programming")
	}
	if GEMM(mem.SRAMConfig, 64, 128, 256, 32).ProgramBytes != 0 {
		t.Error("SRAM GEMM should not bill programming")
	}
}

func TestGEMMScalesWithWork(t *testing.T) {
	small := GEMM(mem.SRAMConfig, 16, 128, 256, 16)
	big := GEMM(mem.SRAMConfig, 256, 128, 256, 16)
	if big.Cycles <= small.Cycles {
		t.Errorf("16x work not reflected: %d vs %d", small.Cycles, big.Cycles)
	}
}

func TestVadd(t *testing.T) {
	est := Vadd(mem.SRAMConfig, 1<<20, 16)
	// 16 arrays * 256 lanes = 4096; 1M elements -> 256 waves * 16 cyc.
	if est.Cycles != 256*16 {
		t.Errorf("vadd cycles = %d, want 4096", est.Cycles)
	}
	if est.LoadBytes != 4<<20 || est.StoreBytes != 2<<20 {
		t.Errorf("vadd bytes = %d/%d", est.LoadBytes, est.StoreBytes)
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSR(rng, 10, 10, 20)
	for i, f := range []func(){
		func() { SpMM(mem.SRAMConfig, a, 128, 0, true) },
		func() { SpMM(mem.SRAMConfig, a, 0, 4, true) },
		func() { GEMM(mem.SRAMConfig, 0, 1, 1, 4) },
		func() { GEMM(mem.SRAMConfig, 1, 1, 1, 0) },
		func() { Vadd(mem.SRAMConfig, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestReuseCompareBStationaryWins(t *testing.T) {
	// Section III-D3: B-stationary beats C-stationary on both memory
	// traffic and compute for real sparse aggregation (paper: 4.3x
	// latency, 42x compute on ogbl-collab).
	rng := rand.New(rand.NewSource(8))
	d, _ := graph.DatasetByName("ogbl-collab")
	g := d.Generate(rng)
	s := graph.NewSampler(rng, g, 2, 0)
	sg := s.Sample(rng.Intn(g.N))
	b, c := ReuseCompare(mem.SRAMConfig, sg.Adj, 128, 16)
	if c.ComputeCycles <= b.ComputeCycles {
		t.Errorf("C-stationary compute %d <= B-stationary %d", c.ComputeCycles, b.ComputeCycles)
	}
	computeRatio := float64(c.ComputeCycles) / float64(b.ComputeCycles)
	if computeRatio < 3 {
		t.Errorf("compute ratio = %.1f, want a multi-x advantage", computeRatio)
	}
	if c.LoadBytes < b.LoadBytes {
		t.Errorf("C-stationary should not move less data: %d vs %d", c.LoadBytes, b.LoadBytes)
	}
}

// --- functional mapping validation ---

func TestGEMMViaSRAMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandomDense(rng, 7, 12, 1.5)
	w := tensor.RandomDense(rng, 12, 9, 1.5)
	got := GEMMViaSRAM(x, w)
	want := tensor.GEMM(x, w)
	if !got.Equal(want) {
		t.Error("bit-serial GEMM mapping diverges from reference")
	}
}

func TestGEMMViaSRAMWideK(t *testing.T) {
	// k > 256 forces single-column tiles.
	rng := rand.New(rand.NewSource(10))
	x := tensor.RandomDense(rng, 2, 300, 0.2)
	w := tensor.RandomDense(rng, 300, 3, 0.2)
	got := GEMMViaSRAM(x, w)
	want := tensor.GEMM(x, w)
	if !got.Equal(want) {
		t.Error("wide-k GEMM mapping diverges")
	}
}

func TestSpMMViaReRAMCloseToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomCSR(rng, 20, 30, 90)
	b := tensor.RandomDense(rng, 30, 8, 0.5)
	got := SpMMViaReRAM(a, b)
	want := tensor.SpMM(a, b)
	// The crossbar accumulates products at full precision and rounds
	// once; the scalar reference rounds per product. Tolerance is the
	// worst-case accumulated rounding gap (half a ULP per product).
	for r := 0; r < got.Rows; r++ {
		maxGap := float64(a.RowNNZ(r))/2 + 1
		for c := 0; c < got.Cols; c++ {
			gap := math.Abs(float64(got.At(r, c)) - float64(want.At(r, c)))
			if gap > maxGap {
				t.Fatalf("(%d,%d): crossbar %d vs reference %d, gap %v > %v",
					r, c, got.At(r, c), want.At(r, c), gap, maxGap)
			}
		}
	}
}

func TestSpMMViaReRAMEmptyRows(t *testing.T) {
	a := tensor.FromCOO(3, 3, []tensor.Coord{{Row: 1, Col: 1, Val: fixed.FromInt(1)}})
	b := tensor.NewDense(3, 2)
	b.Set(1, 0, fixed.FromInt(5))
	got := SpMMViaReRAM(a, b)
	if got.At(1, 0) != fixed.FromInt(5) || got.At(0, 0) != 0 || got.At(2, 1) != 0 {
		t.Error("empty-row handling wrong")
	}
}

func TestEstimateString(t *testing.T) {
	est := Vadd(mem.SRAMConfig, 100, 1)
	if est.String() == "" || est.Target != isa.SRAM {
		t.Error("estimate render wrong")
	}
}
