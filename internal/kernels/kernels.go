// Package kernels implements the MLIMP kernel mappings of Section III-D:
// GEMM (weight-serialised SIMD mapping for bit-serial memories, 2D
// crossbar mapping for ReRAM), the lookup-based B-stationary SpMM with
// replication, and elementwise Vadd. For each mapping it derives cycle
// counts from first principles over the Table III device geometry — these
// estimates are what the performance predictor learns and what the
// event-driven simulation charges.
package kernels

import (
	"fmt"

	"mlimp/internal/dfg"
	"mlimp/internal/isa"
	"mlimp/internal/mem"
	"mlimp/internal/tensor"
)

// Estimate is the cost of one kernel invocation on one device at one
// allocation size. Compute time is Cycles at the device clock; data
// movement (LoadBytes/StoreBytes through DDR4, ProgramBytes through the
// ReRAM write path) is billed by the caller via internal/mainmem.
type Estimate struct {
	Target       isa.Target
	Cycles       int64
	LoadBytes    int64
	StoreBytes   int64
	ProgramBytes int64 // ReRAM weight-programming traffic (slow writes)
	Iterations   int   // n_iter when the working set exceeds the allocation
	RepUnit      int   // a_repunit: arrays for one working-set replica
	Replicas     int   // data replicas within the allocation
}

// String renders the estimate compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("%s: %d cycles, ld=%dB st=%dB prog=%dB iter=%d rep=%d",
		e.Target, e.Cycles, e.LoadBytes, e.StoreBytes, e.ProgramBytes, e.Iterations, e.Replicas)
}

func log2ceil(n int) int64 {
	var l int64
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("kernels: division by non-positive")
	}
	return (a + b - 1) / b
}

// elementBytes is the storage of one fixed-point element.
const elementBytes = 2

// SpMM estimates the lookup-based B-stationary SpMM of Section III-D3:
// the dense matrix B (n x f) is partitioned across the allocated arrays;
// each nonzero of the sparse A triggers an f-wide vector MAC (weighted)
// or addition (binary adjacency) on the array holding the referenced B
// row, with buffer arrays accumulating partial sums as a reduction tree.
// Replicating the B slices exposes input-row parallelism.
func SpMM(cfg mem.Config, a *tensor.CSR, f, allocArrays int, weighted bool) Estimate {
	if allocArrays <= 0 {
		panic("kernels: allocation must be positive")
	}
	if f <= 0 || a == nil {
		panic("kernels: bad SpMM operands")
	}
	est := Estimate{Target: cfg.Target}

	// One replica of B = n rows of f elements.
	bBytes := int64(a.Cols) * int64(f) * elementBytes
	repUnit := int(ceilDiv(bBytes, cfg.ArrayBytes()))
	if repUnit == 0 {
		repUnit = 1
	}
	est.RepUnit = repUnit

	iter := 1
	replicas := 1
	arraysPerReplica := allocArrays
	if allocArrays >= repUnit {
		replicas = allocArrays / repUnit
		// Input-row parallelism cannot exceed the number of A rows.
		if replicas > a.Rows {
			replicas = a.Rows
		}
		if replicas < 1 {
			replicas = 1
		}
		arraysPerReplica = repUnit
	} else {
		// Working set does not fit: stream B in n_iter pieces.
		iter = int(ceilDiv(int64(repUnit), int64(allocArrays)))
	}
	est.Iterations = iter
	est.Replicas = replicas

	// Input traffic: B loaded once (B-stationary), plus the sparse A
	// stream; replication copies happen inside the memory and are billed
	// as compute cycles below. Output: one f-wide row per A row.
	est.LoadBytes = bBytes + a.SizeBytes()
	est.StoreBytes = int64(a.Rows) * int64(f) * elementBytes

	est.Cycles = spmmComputeCycles(cfg, a, f, arraysPerReplica, replicas, weighted)
	// Replication copies: the B working set fans out across arrays in a
	// doubling tree (1->2->4->...), each round moving the rows of one
	// replica with row-wide in-memory moves.
	if replicas > 1 {
		rowsPerArray := cfg.ArrayBytes() / (int64(f) * elementBytes)
		if rowsPerArray < 1 {
			rowsPerArray = 1
		}
		copyOps := ceilDiv(int64(a.Cols), rowsPerArray) * log2ceil(replicas)
		est.Cycles += copyOps * isa.Models(cfg.Target).OpCycles(dfg.OpMov, 1)
	}
	return est
}

// SpMMUnit estimates SpMM at the unit allocation a_repunit — exactly one
// replica of the B working set — which is the operating point the
// performance predictor learns (t_cmpt(x, a_repunit), Section III-C3).
func SpMMUnit(cfg mem.Config, a *tensor.CSR, f int, weighted bool) Estimate {
	bBytes := int64(a.Cols) * int64(f) * elementBytes
	repUnit := int(ceilDiv(bBytes, cfg.ArrayBytes()))
	if repUnit == 0 {
		repUnit = 1
	}
	return SpMM(cfg, a, f, repUnit, weighted)
}

// spmmComputeCycles walks A's rows, assigning them round-robin to
// replicas; each replica processes its rows serially while replicas run
// in parallel (input-row parallelism).
func spmmComputeCycles(cfg mem.Config, a *tensor.CSR, f, arraysPerReplica, replicas int, weighted bool) int64 {
	model := isa.Models(cfg.Target)
	perReplica := make([]int64, replicas)

	if cfg.Target == isa.ReRAM {
		// Lookup rows feed the analog crossbar: all k_r referenced B
		// rows accumulate in one multi-operand dot per <=ArrayRows
		// operands, f/ALUsPerArray column groups wide.
		colGroups := ceilDiv(int64(f), int64(cfg.ALUsPerArray))
		for r := 0; r < a.Rows; r++ {
			k := int64(a.RowNNZ(r))
			if k == 0 {
				continue
			}
			cyc := model.OpCycles(dfg.OpDot, int(k)) * colGroups
			perReplica[r%replicas] += cyc
		}
	} else {
		// Bit-serial memories: one f-wide MAC (or add) per nonzero. The
		// looked-up B rows are scattered over the replica's arrays, so
		// up to arraysPerReplica lookups proceed concurrently; partial
		// sums merge through buffer arrays in a log tree.
		var op int64
		if weighted {
			op = model.OpCycles(dfg.OpMul, 1) + model.OpCycles(dfg.OpAdd, 1)
		} else {
			op = model.OpCycles(dfg.OpAdd, 1)
		}
		add := model.OpCycles(dfg.OpAdd, 1)
		// f-wide vectors may exceed one array's lanes.
		laneWaves := ceilDiv(int64(f), int64(cfg.ALUsPerArray))
		p := int64(arraysPerReplica)
		for r := 0; r < a.Rows; r++ {
			k := int64(a.RowNNZ(r))
			if k == 0 {
				continue
			}
			conc := min64(k, p)
			cyc := ceilDiv(k, p)*op*laneWaves + log2ceil(int(conc))*add
			perReplica[r%replicas] += cyc
		}
	}
	var maxCyc int64
	for _, c := range perReplica {
		if c > maxCyc {
			maxCyc = c
		}
	}
	return maxCyc
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// GEMM estimates X (r x k) times W (k x c) under the Section III-D2
// mapping. Bit-serial targets serialise W into the top registers of the
// SIMD slots and duplicate each input row per output column: all r*k*c
// scalar multiplies proceed wave-parallel across the allocated lanes,
// followed by a log-depth reduction over k. ReRAM programs W into
// crossbar columns once and streams input rows through analog dots.
func GEMM(cfg mem.Config, r, k, c, allocArrays int) Estimate {
	if allocArrays <= 0 || r <= 0 || k <= 0 || c <= 0 {
		panic("kernels: bad GEMM shape or allocation")
	}
	est := Estimate{Target: cfg.Target, Iterations: 1, Replicas: 1}
	model := isa.Models(cfg.Target)

	xBytes := int64(r) * int64(k) * elementBytes
	wBytes := int64(k) * int64(c) * elementBytes
	est.LoadBytes = xBytes + wBytes
	est.StoreBytes = int64(r) * int64(c) * elementBytes

	if cfg.Target == isa.ReRAM {
		// W occupies ceil(k/128) x c logical columns; replicate across
		// the allocation for row parallelism.
		kGroups := ceilDiv(int64(k), int64(cfg.ArrayRows))
		colsNeeded := kGroups * int64(c)
		totalALUs := int64(allocArrays) * int64(cfg.ALUsPerArray)
		repUnit := int(ceilDiv(colsNeeded, int64(cfg.ALUsPerArray)))
		if repUnit == 0 {
			repUnit = 1
		}
		est.RepUnit = repUnit
		replicas := int(totalALUs / colsNeeded)
		if replicas < 1 {
			replicas = 1
		}
		est.Replicas = replicas
		est.ProgramBytes = wBytes // one-time crossbar programming
		dots := int64(r) * int64(c) * kGroups
		waves := ceilDiv(dots, int64(replicas)*colsNeeded)
		est.Cycles = waves * model.OpCycles(dfg.OpDot, min(k, cfg.ArrayRows))
		return est
	}

	// Bit-serial mapping: lanes hold (input element, weight) pairs; one
	// input row needs k*c lanes.
	lanesPerRow := int64(k) * int64(c)
	totalLanes := int64(allocArrays) * int64(cfg.ALUsPerArray)
	est.RepUnit = int(ceilDiv(lanesPerRow, int64(cfg.ALUsPerArray)))
	rowsPerWave := totalLanes / lanesPerRow
	var waves int64
	if rowsPerWave >= 1 {
		waves = ceilDiv(int64(r), rowsPerWave)
	} else {
		// One row does not fit: split columns across waves.
		waves = int64(r) * ceilDiv(lanesPerRow, totalLanes)
	}
	perWave := model.OpCycles(dfg.OpMul, 1) + log2ceil(k)*model.OpCycles(dfg.OpAdd, 1)
	est.Cycles = waves * perWave
	return est
}

// Vadd estimates the elementwise addition of two vectors of n elements.
func Vadd(cfg mem.Config, n, allocArrays int) Estimate {
	if allocArrays <= 0 || n <= 0 {
		panic("kernels: bad Vadd size or allocation")
	}
	model := isa.Models(cfg.Target)
	lanes := int64(allocArrays) * int64(cfg.ALUsPerArray)
	waves := ceilDiv(int64(n), lanes)
	// Working set: two operand vectors and the result.
	repUnit := int(ceilDiv(3*int64(n)*elementBytes, cfg.ArrayBytes()))
	if repUnit == 0 {
		repUnit = 1
	}
	return Estimate{
		Target:     cfg.Target,
		Cycles:     waves * model.OpCycles(dfg.OpAdd, 1),
		LoadBytes:  2 * int64(n) * elementBytes,
		StoreBytes: int64(n) * elementBytes,
		Iterations: 1, RepUnit: repUnit, Replicas: 1,
	}
}

// ReuseStats compares the SpMM reuse patterns of Figure 9.
type ReuseStats struct {
	LoadBytes     int64
	ComputeCycles int64
}

// ReuseCompare returns the cost of B-stationary versus C-stationary SpMM
// data orchestration on one device (Section III-D3: B-stationary loads B
// once and updates outputs atomically; C-stationary re-streams A per
// B-column tile and performs lengthy null-padded reductions).
func ReuseCompare(cfg mem.Config, a *tensor.CSR, f, allocArrays int) (bStat, cStat ReuseStats) {
	model := isa.Models(cfg.Target)
	est := SpMM(cfg, a, f, allocArrays, true)
	bStat = ReuseStats{LoadBytes: est.LoadBytes, ComputeCycles: est.Cycles * int64(est.Iterations)}

	// C-stationary: outputs resident; A is re-loaded for every B column
	// tile that fits the allocation, and each output row reduces over
	// the full padded column range (nulls included).
	bBytes := int64(a.Cols) * int64(f) * elementBytes
	tiles := ceilDiv(bBytes, int64(allocArrays)*cfg.ArrayBytes())
	if tiles < 1 {
		tiles = 1
	}
	cStat.LoadBytes = bBytes + a.SizeBytes()*tiles
	// Dense-ified reduction: every output row walks all a.Cols partials.
	op := model.OpCycles(dfg.OpMul, 1) + model.OpCycles(dfg.OpAdd, 1)
	lanes := int64(allocArrays) * int64(cfg.ALUsPerArray)
	macs := int64(a.Rows) * int64(a.Cols) * int64(f)
	cStat.ComputeCycles = ceilDiv(macs, lanes) * op
	return bStat, cStat
}
