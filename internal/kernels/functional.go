package kernels

import (
	"mlimp/internal/fixed"
	"mlimp/internal/reram"
	"mlimp/internal/sram"
	"mlimp/internal/tensor"
)

// This file exercises the kernel mappings on the *functional* device
// models, proving the data layouts of Section III-D actually compute the
// right answers on the simulated hardware (not just the right cycle
// counts). Tests compare these against the tensor reference kernels.

// GEMMViaSRAM computes X*W by the bit-serial SIMD mapping: for each input
// row, the weight matrix is serialised into one operand slot, the input
// row is duplicated per output column into another, the multiply runs
// once across all lanes, and per-column reductions produce the outputs.
func GEMMViaSRAM(x, w *tensor.Dense) *tensor.Dense {
	if x.Cols != w.Rows {
		panic("kernels: GEMM shape mismatch")
	}
	k, c := w.Rows, w.Cols
	lanes := k * c
	// Arrays are 256 lanes wide; tile output columns so a tile fits.
	colsPerTile := 256 / k
	if colsPerTile < 1 {
		colsPerTile = 1 // one column spans multiple arrays; emulate with wider array
	}
	out := tensor.NewDense(x.Rows, c)
	arrCols := colsPerTile * k
	if arrCols > lanes {
		arrCols = lanes
	}
	a := sram.NewArray(256, arrCols)
	for r := 0; r < x.Rows; r++ {
		for tile := 0; tile < c; tile += colsPerTile {
			hi := tile + colsPerTile
			if hi > c {
				hi = c
			}
			width := (hi - tile) * k
			wSer := make([]fixed.Num, width)  // serialised weight tile
			inDup := make([]fixed.Num, width) // duplicated input row
			for j := tile; j < hi; j++ {
				for i := 0; i < k; i++ {
					wSer[(j-tile)*k+i] = w.At(i, j)
					inDup[(j-tile)*k+i] = x.At(r, i)
				}
			}
			a.StoreVector(0, wSer)
			a.StoreVector(1, inDup)
			a.Mul(2, 0, 1) // all multiplies in parallel
			prods := a.LoadVector(2, width)
			for j := tile; j < hi; j++ {
				var acc fixed.Num
				for i := 0; i < k; i++ {
					acc = fixed.Add(acc, prods[(j-tile)*k+i])
				}
				out.Set(r, j, acc)
			}
		}
	}
	return out
}

// SpMMViaReRAM computes A*B by the lookup-based B-stationary mapping on
// analog crossbars: B's rows live in crossbar rows; for each sparse row
// of A, the nonzero values form the input vector of a multi-operand dot
// against the referenced B rows, one analog MAC per output feature
// column group.
func SpMMViaReRAM(a *tensor.CSR, b *tensor.Dense) *tensor.Dense {
	if a.Cols != b.Rows {
		panic("kernels: SpMM shape mismatch")
	}
	out := tensor.NewDense(a.Rows, b.Cols)
	xbar := reram.NewCrossbar(128, 128)
	for r := 0; r < a.Rows; r++ {
		cols, vals := a.RowEntries(r)
		if len(cols) == 0 {
			continue
		}
		// Process the row in chunks of the crossbar height.
		for lo := 0; lo < len(cols); lo += xbar.Rows {
			hi := lo + xbar.Rows
			if hi > len(cols) {
				hi = len(cols)
			}
			coef := vals[lo:hi]
			for j := 0; j < b.Cols; j++ {
				// Program the looked-up B column slice as weights.
				wcol := make([]fixed.Num, hi-lo)
				for i, bc := range cols[lo:hi] {
					wcol[i] = b.At(int(bc), j)
				}
				lane := j % xbar.ALUs()
				xbar.ProgramWeights(lane, wcol)
				partial, _ := xbar.MACFixed(lane, coef)
				out.Set(r, j, fixed.Add(out.At(r, j), partial))
			}
		}
	}
	return out
}
