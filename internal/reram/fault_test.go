package reram

import (
	"math/rand"
	"testing"

	"mlimp/internal/fixed"
)

func driftFixture(rng *rand.Rand) (*Crossbar, []fixed.Num, []fixed.Num) {
	c := NewCrossbar(128, 128)
	weights := make([]fixed.Num, c.Rows)
	inputs := make([]fixed.Num, c.Rows)
	for i := range weights {
		weights[i] = fixed.Num(rng.Intn(65536) - 32768)
		inputs[i] = fixed.Num(rng.Intn(65536) - 32768)
	}
	c.ProgramWeights(0, weights)
	return c, weights, inputs
}

func TestDriftPerturbsMACWithinBound(t *testing.T) {
	c, weights, inputs := driftFixture(rand.New(rand.NewSource(5)))
	exact := WideDot(inputs, weights)
	if got, _ := c.MAC(0, inputs); got != exact {
		t.Fatalf("pre-drift MAC = %d, want exact %d", got, exact)
	}

	drifted := c.Drift(rand.New(rand.NewSource(9)), 0.05)
	if drifted == 0 {
		t.Fatal("no cells drifted at 5% over 1024 cells (implausible)")
	}
	got, _ := c.MAC(0, inputs)
	if got == exact {
		t.Error("drift left the analog MAC bit-exact (silent-error model broken)")
	}
	// Each ±1-level cell moves the raw output by at most the per-cell
	// bound; the digital correction metadata stays untouched.
	errAbs := got - exact
	if errAbs < 0 {
		errAbs = -errAbs
	}
	if bound := int64(drifted) * DriftErrorBound(); errAbs > bound {
		t.Errorf("drift error %d exceeds bound %d for %d cells", errAbs, bound, drifted)
	}
}

func TestDriftDeterministic(t *testing.T) {
	c1, _, inputs := driftFixture(rand.New(rand.NewSource(5)))
	c2, _, _ := driftFixture(rand.New(rand.NewSource(5)))
	n1 := c1.Drift(rand.New(rand.NewSource(3)), 0.1)
	n2 := c2.Drift(rand.New(rand.NewSource(3)), 0.1)
	if n1 != n2 {
		t.Fatalf("same seed drifted %d vs %d cells", n1, n2)
	}
	g1, _ := c1.MAC(0, inputs)
	g2, _ := c2.MAC(0, inputs)
	if g1 != g2 {
		t.Errorf("same seed produced different drifted MACs: %d vs %d", g1, g2)
	}
}

func TestDriftZeroProbability(t *testing.T) {
	c, weights, inputs := driftFixture(rand.New(rand.NewSource(5)))
	if n := c.Drift(rand.New(rand.NewSource(1)), 0); n != 0 {
		t.Fatalf("prob 0 drifted %d cells", n)
	}
	if got, _ := c.MAC(0, inputs); got != WideDot(inputs, weights) {
		t.Error("prob-0 drift changed the MAC")
	}
}
