package reram

import "math/rand"

// Conductance drift. ReRAM cells age: programmed conductance levels
// creep toward neighbouring states (Section II-A's endurance/variation
// problem — the reason LRMP-style deployments must tolerate degraded
// crossbars). Drift is *silent*: the digital offset-correction metadata
// still describes the originally programmed weights, so the analog dot
// product diverges from the exact reference — the fault mode that gets
// a crossbar retired by the fleet-level plan (internal/fault).

// Drift perturbs each cell of the programmed region by ±1 conductance
// level with probability prob, clamped to the valid level range,
// without touching the correction metadata. Deterministic for a seeded
// rng; returns the number of drifted cells.
func (c *Crossbar) Drift(rng *rand.Rand, prob float64) int {
	drifted := 0
	for lcol := 0; lcol < c.ALUs(); lcol++ {
		base := lcol * SlicesPerWeight
		for r := 0; r < c.active[lcol]; r++ {
			for s := 0; s < SlicesPerWeight; s++ {
				if rng.Float64() >= prob {
					continue
				}
				cell := &c.cells[r][base+s]
				if rng.Intn(2) == 0 && *cell > 0 {
					*cell--
					drifted++
				} else if *cell < radix-1 {
					*cell++
					drifted++
				}
			}
		}
	}
	return drifted
}

// DriftErrorBound returns a per-cell bound on how much one ±1-level
// drifted cell can move the raw MAC output: the worst case is a drift
// in the most significant slice hit by the largest offset-encoded
// input digit pattern.
func DriftErrorBound() int64 {
	maxEnc := int64(1<<WordBits - 1) // largest offset-encoded input
	return maxEnc << (uint(SlicesPerWeight-1) * CellBits)
}
