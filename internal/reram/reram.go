// Package reram implements the functional and timing model of in-ReRAM
// analog computing (IMP / ISAAC / PRIME, Section II-B3). A Crossbar
// stores 16-bit weights sliced into eight 2-bit memristor cells across
// adjacent bitlines; inputs stream through 2-bit DACs over eight cycles;
// bitline currents accumulate multi-operand sums by Kirchhoff's law and
// are digitised by per-column ADCs, then combined by the peripheral
// shift-and-add unit.
//
// Signed arithmetic uses offset encoding on both operands (weights and
// inputs are stored/streamed as value+32768); the peripheral subtracts
// the digitally tracked correction terms, making the analog dot product
// bit-exact against an integer reference — which the tests assert.
package reram

import (
	"fmt"

	"mlimp/internal/fixed"
)

const (
	// CellBits is the memristor cell resolution (2 bits, Table III).
	CellBits = 2
	// WordBits is the operand width.
	WordBits = 16
	// SlicesPerWeight is how many cells hold one weight (16/2 = 8).
	SlicesPerWeight = WordBits / CellBits
	// DACBits is the input DAC resolution per streaming cycle.
	DACBits = 2
	// MACCycles is the input streaming depth: 16 bits / 2-bit DAC = 8
	// cycles per multi-operand MAC, the Table III ReRAM figure.
	MACCycles = WordBits / DACBits

	offset = 1 << (WordBits - 1) // offset-encoding bias (32768)
	digits = WordBits / DACBits
	radix  = 1 << DACBits
)

// Crossbar is one ReRAM compute array: Rows wordlines by PhysCols
// bitlines of 2-bit cells. PhysCols/SlicesPerWeight logical dot-product
// ALUs (128/8 = 16, the Table III ALUs-per-array figure).
type Crossbar struct {
	Rows, PhysCols int
	cells          [][]uint8 // [row][physCol], 0..3 conductance levels
	// Per-logical-column digital metadata for offset correction.
	weightSum []int64 // sum of offset-encoded weights
	active    []int   // programmed row count
}

// NewCrossbar builds a zeroed crossbar.
func NewCrossbar(rows, physCols int) *Crossbar {
	if rows <= 0 || physCols <= 0 || physCols%SlicesPerWeight != 0 {
		panic("reram: bad crossbar geometry")
	}
	c := &Crossbar{Rows: rows, PhysCols: physCols,
		cells:     make([][]uint8, rows),
		weightSum: make([]int64, physCols/SlicesPerWeight),
		active:    make([]int, physCols/SlicesPerWeight),
	}
	for i := range c.cells {
		c.cells[i] = make([]uint8, physCols)
	}
	return c
}

// ALUs returns the number of logical dot-product units.
func (c *Crossbar) ALUs() int { return c.PhysCols / SlicesPerWeight }

// ProgramWeights writes a weight vector down logical column lcol, one
// weight per row, sliced into 2-bit cells. Programming is a (slow,
// endurance-limited) write operation billed separately by the energy
// model; reprogramming a column simply overwrites it.
func (c *Crossbar) ProgramWeights(lcol int, weights []fixed.Num) {
	if lcol < 0 || lcol >= c.ALUs() {
		panic(fmt.Sprintf("reram: logical column %d out of %d", lcol, c.ALUs()))
	}
	if len(weights) > c.Rows {
		panic("reram: more weights than rows")
	}
	base := lcol * SlicesPerWeight
	var sum int64
	for r := 0; r < c.Rows; r++ {
		var v uint32
		if r < len(weights) {
			v = uint32(int32(weights[r]) + offset) // offset encoding
			sum += int64(v)
		}
		for s := 0; s < SlicesPerWeight; s++ {
			c.cells[r][base+s] = uint8(v >> (uint(s) * CellBits) & (radix - 1))
		}
	}
	c.weightSum[lcol] = sum
	c.active[lcol] = len(weights)
}

// MAC streams the input vector through the DACs and returns the exact
// signed dot product sum(inputs[r] * weights[r]) as a wide integer,
// together with the cycle count (8). Inputs beyond the programmed row
// count must be absent; shorter inputs are zero-extended.
func (c *Crossbar) MAC(lcol int, inputs []fixed.Num) (int64, int64) {
	if lcol < 0 || lcol >= c.ALUs() {
		panic("reram: logical column out of range")
	}
	n := c.active[lcol]
	if len(inputs) > n {
		panic("reram: more inputs than programmed weights")
	}
	base := lcol * SlicesPerWeight
	// Offset-encode inputs into base-4 digit planes.
	enc := make([]uint32, n)
	var inputSum int64
	for r := 0; r < n; r++ {
		var a int32
		if r < len(inputs) {
			a = int32(inputs[r])
		}
		enc[r] = uint32(a + offset)
		inputSum += int64(enc[r])
	}
	// Analog phase: for each of the 8 DAC cycles, every slice bitline
	// accumulates current = sum_r digit[r] * cell[r][col]; the ADC
	// digitises it (max 3*3*rows fits comfortably in the ADC range) and
	// the shift-add unit weighs it by 4^(inputDigit + weightSlice).
	var acc int64
	for d := 0; d < digits; d++ {
		for s := 0; s < SlicesPerWeight; s++ {
			var current int64
			col := base + s
			for r := 0; r < n; r++ {
				digit := int64(enc[r] >> (uint(d) * DACBits) & (radix - 1))
				current += digit * int64(c.cells[r][col])
			}
			acc += current << (uint(d+s) * DACBits)
		}
	}
	// Digital offset correction:
	// sum((p-B)(v-B)) = sum(pv) - B*sum(p) - B*sum(v) + B^2*n.
	dot := acc - offset*inputSum - offset*c.weightSum[lcol] + int64(offset)*int64(offset)*int64(n)
	return dot, MACCycles
}

// MACFixed rescales the wide dot product to the package Q format with a
// single round-to-nearest and saturation at the peripheral output
// register (in-memory accumulators are wide; only the final result is
// narrowed).
func (c *Crossbar) MACFixed(lcol int, inputs []fixed.Num) (fixed.Num, int64) {
	raw, cycles := c.MAC(lcol, inputs)
	v := (raw + 1<<(fixed.FracBits-1)) >> fixed.FracBits
	switch {
	case v > int64(fixed.MaxNum):
		v = int64(fixed.MaxNum)
	case v < int64(fixed.MinNum):
		v = int64(fixed.MinNum)
	}
	return fixed.Num(v), cycles
}

// WideDot is the integer reference the analog model must match: the
// exact sum of products of the raw fixed-point bit patterns.
func WideDot(a, w []fixed.Num) int64 {
	if len(a) != len(w) {
		panic("reram: length mismatch")
	}
	var s int64
	for i := range a {
		s += int64(a[i]) * int64(w[i])
	}
	return s
}
