package reram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlimp/internal/fixed"
)

func TestGeometry(t *testing.T) {
	c := NewCrossbar(128, 128)
	if c.ALUs() != 16 {
		t.Errorf("ALUs = %d, want 16 (Table III)", c.ALUs())
	}
	for _, f := range []func(){
		func() { NewCrossbar(0, 128) },
		func() { NewCrossbar(128, 100) }, // not a multiple of 8 slices
		func() { c.ProgramWeights(99, nil) },
		func() { c.ProgramWeights(0, make([]fixed.Num, 500)) },
		func() { c.MAC(99, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMACSimple(t *testing.T) {
	c := NewCrossbar(128, 128)
	w := []fixed.Num{fixed.FromInt(1), fixed.FromInt(2), fixed.FromInt(-3)}
	a := []fixed.Num{fixed.FromInt(4), fixed.FromInt(5), fixed.FromInt(6)}
	c.ProgramWeights(0, w)
	got, cycles := c.MAC(0, a)
	if want := WideDot(a, w); got != want {
		t.Errorf("MAC = %d, want %d", got, want)
	}
	if cycles != 8 {
		t.Errorf("cycles = %d, want 8 (Table III)", cycles)
	}
	// Fixed-point view: dot of (4,5,6)x(1,2,-3) = 4+10-18 = -4.
	fx, _ := c.MACFixed(0, a)
	if fx.Float() != -4 {
		t.Errorf("MACFixed = %v, want -4", fx.Float())
	}
}

func TestMACZeroExtension(t *testing.T) {
	c := NewCrossbar(128, 128)
	w := []fixed.Num{fixed.FromInt(1), fixed.FromInt(1), fixed.FromInt(1)}
	c.ProgramWeights(2, w)
	got, _ := c.MAC(2, []fixed.Num{fixed.FromInt(7)}) // short input
	if want := WideDot([]fixed.Num{fixed.FromInt(7), 0, 0}, w); got != want {
		t.Errorf("zero-extended MAC = %d, want %d", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for too many inputs")
		}
	}()
	c.MAC(2, make([]fixed.Num, 10))
}

func TestMACFullHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCrossbar(128, 128)
	w := make([]fixed.Num, 128)
	a := make([]fixed.Num, 128)
	for i := range w {
		w[i] = fixed.Num(rng.Intn(1<<16) - (1 << 15))
		a[i] = fixed.Num(rng.Intn(1<<16) - (1 << 15))
	}
	c.ProgramWeights(5, w)
	got, _ := c.MAC(5, a)
	if want := WideDot(a, w); got != want {
		t.Errorf("128-operand MAC = %d, want %d (analog model must be bit-exact)", got, want)
	}
}

func TestMACFixedSaturates(t *testing.T) {
	c := NewCrossbar(128, 128)
	w := make([]fixed.Num, 128)
	a := make([]fixed.Num, 128)
	for i := range w {
		w[i], a[i] = fixed.MaxNum, fixed.MaxNum
	}
	c.ProgramWeights(0, w)
	fx, _ := c.MACFixed(0, a)
	if fx != fixed.MaxNum {
		t.Errorf("saturating MACFixed = %d", fx)
	}
	for i := range a {
		a[i] = fixed.MinNum
	}
	fx, _ = c.MACFixed(0, a)
	if fx != fixed.MinNum {
		t.Errorf("negative saturating MACFixed = %d", fx)
	}
}

func TestReprogramming(t *testing.T) {
	c := NewCrossbar(128, 128)
	c.ProgramWeights(3, []fixed.Num{fixed.FromInt(9), fixed.FromInt(9)})
	c.ProgramWeights(3, []fixed.Num{fixed.FromInt(2)})
	got, _ := c.MAC(3, []fixed.Num{fixed.FromInt(3)})
	if want := int64(fixed.FromInt(3)) * int64(fixed.FromInt(2)); got != want {
		t.Errorf("after reprogram MAC = %d, want %d", got, want)
	}
}

func TestIndependentColumns(t *testing.T) {
	c := NewCrossbar(128, 128)
	for l := 0; l < c.ALUs(); l++ {
		c.ProgramWeights(l, []fixed.Num{fixed.FromInt(l + 1)})
	}
	in := []fixed.Num{fixed.FromInt(2)}
	for l := 0; l < c.ALUs(); l++ {
		got, _ := c.MAC(l, in)
		want := int64(fixed.FromInt(2)) * int64(fixed.FromInt(l+1))
		if got != want {
			t.Errorf("col %d: %d want %d", l, got, want)
		}
	}
}

// Property: the analog bit-sliced MAC with offset correction is exact
// for arbitrary signed operands and lengths.
func TestAnalogMACExactProperty(t *testing.T) {
	c := NewCrossbar(128, 128)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(128)
		w := make([]fixed.Num, n)
		a := make([]fixed.Num, n)
		for i := range w {
			w[i] = fixed.Num(rng.Intn(1<<16) - (1 << 15))
			a[i] = fixed.Num(rng.Intn(1<<16) - (1 << 15))
		}
		lcol := rng.Intn(c.ALUs())
		c.ProgramWeights(lcol, w)
		got, _ := c.MAC(lcol, a)
		return got == WideDot(a, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
