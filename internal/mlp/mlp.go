// Package mlp is a from-scratch feed-forward neural network with Adam
// training — the substrate of MLIMP's performance predictor ("The
// regressors have two hidden layers with 16 and 8 nodes", Section III-E).
// float64 throughout: the predictor runs on the host CPU, not in memory.
package mlp

import (
	"fmt"
	"math"
	"math/rand"

	"mlimp/internal/fixed"
)

// Net is a fully connected feed-forward network with tanh hidden
// activations and a linear output layer.
type Net struct {
	sizes   []int
	weights [][][]float64 // [layer][out][in]
	biases  [][]float64   // [layer][out]

	// Adam state.
	mW, vW [][][]float64
	mB, vB [][]float64
	step   int
}

// New builds a network with the given layer sizes (inputs first, output
// last), Xavier-initialised from rng.
func New(rng *rand.Rand, sizes ...int) *Net {
	if len(sizes) < 2 {
		panic("mlp: need at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic("mlp: layer sizes must be positive")
		}
	}
	n := &Net{sizes: append([]int(nil), sizes...)}
	for l := 1; l < len(sizes); l++ {
		in, out := sizes[l-1], sizes[l]
		scale := math.Sqrt(2.0 / float64(in+out))
		w := make([][]float64, out)
		mw := make([][]float64, out)
		vw := make([][]float64, out)
		for o := range w {
			w[o] = make([]float64, in)
			mw[o] = make([]float64, in)
			vw[o] = make([]float64, in)
			for i := range w[o] {
				w[o][i] = rng.NormFloat64() * scale
			}
		}
		n.weights = append(n.weights, w)
		n.mW = append(n.mW, mw)
		n.vW = append(n.vW, vw)
		n.biases = append(n.biases, make([]float64, out))
		n.mB = append(n.mB, make([]float64, out))
		n.vB = append(n.vB, make([]float64, out))
	}
	return n
}

// Clone returns a deep copy of the network, including its Adam state,
// so online fine-tuning of the copy (predictor retraining in the
// serving front end) never perturbs the original.
func (n *Net) Clone() *Net {
	c := &Net{sizes: append([]int(nil), n.sizes...), step: n.step}
	c.weights = clone3(n.weights)
	c.mW = clone3(n.mW)
	c.vW = clone3(n.vW)
	c.biases = clone2(n.biases)
	c.mB = clone2(n.mB)
	c.vB = clone2(n.vB)
	return c
}

func clone2(src [][]float64) [][]float64 {
	out := make([][]float64, len(src))
	for i, row := range src {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

func clone3(src [][][]float64) [][][]float64 {
	out := make([][][]float64, len(src))
	for i, m := range src {
		out[i] = clone2(m)
	}
	return out
}

// NumParams returns the trainable parameter count.
func (n *Net) NumParams() int {
	total := 0
	for l := range n.weights {
		total += len(n.weights[l])*len(n.weights[l][0]) + len(n.biases[l])
	}
	return total
}

// Forward runs inference and returns the output vector.
func (n *Net) Forward(x []float64) []float64 {
	out, _ := n.forward(x)
	return out
}

// ForwardQuant runs inference with each layer's activations snapped to
// a fixed-point grid: formats[l] quantises the output of weight layer l
// (the last entry repeats for deeper layers; nil formats is plain
// Forward). This is the functional model of the predictor MLP running
// on reduced-precision in-memory hardware — weights stay float64 (they
// live on the host), but everything a narrow device stores between
// layers rounds to its grid and clamps to its range.
func (n *Net) ForwardQuant(x []float64, formats []fixed.Format) []float64 {
	if len(formats) == 0 {
		return n.Forward(x)
	}
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("mlp: input size %d, want %d", len(x), n.sizes[0]))
	}
	cur := append([]float64(nil), x...)
	for l := range n.weights {
		f := formats[len(formats)-1]
		if l < len(formats) {
			f = formats[l]
		}
		next := make([]float64, n.sizes[l+1])
		for o := range next {
			s := n.biases[l][o]
			row := n.weights[l][o]
			for i, v := range cur {
				s += row[i] * v
			}
			if l < len(n.weights)-1 {
				s = math.Tanh(s)
			}
			next[o] = f.Float(f.FromFloat(s))
		}
		cur = next
	}
	return cur
}

// forward returns the output and all layer activations (inputs first).
func (n *Net) forward(x []float64) ([]float64, [][]float64) {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("mlp: input size %d, want %d", len(x), n.sizes[0]))
	}
	acts := [][]float64{append([]float64(nil), x...)}
	cur := acts[0]
	for l := range n.weights {
		next := make([]float64, n.sizes[l+1])
		for o := range next {
			s := n.biases[l][o]
			row := n.weights[l][o]
			for i, v := range cur {
				s += row[i] * v
			}
			if l < len(n.weights)-1 {
				s = math.Tanh(s)
			}
			next[o] = s
		}
		acts = append(acts, next)
		cur = next
	}
	return cur, acts
}

// Adam hyperparameters.
const (
	beta1 = 0.9
	beta2 = 0.999
	eps   = 1e-8
)

// TrainStep performs one Adam update on a single (x, y) pair with mean
// squared error loss and returns the sample loss before the update.
func (n *Net) TrainStep(x, y []float64, lr float64) float64 {
	out, acts := n.forward(x)
	if len(y) != len(out) {
		panic("mlp: target size mismatch")
	}
	// Output delta (linear layer, MSE): d = out - y.
	delta := make([]float64, len(out))
	var loss float64
	for i := range out {
		d := out[i] - y[i]
		delta[i] = 2 * d / float64(len(out))
		loss += d * d
	}
	loss /= float64(len(out))

	n.step++
	for l := len(n.weights) - 1; l >= 0; l-- {
		in := acts[l]
		var nextDelta []float64
		if l > 0 {
			nextDelta = make([]float64, len(in))
		}
		for o := range n.weights[l] {
			row := n.weights[l][o]
			d := delta[o]
			for i := range row {
				if nextDelta != nil {
					nextDelta[i] += row[i] * d
				}
				n.adamW(l, o, i, d*in[i])
			}
			n.adamB(l, o, d)
		}
		// Apply tanh derivative for the layer below (its outputs were
		// tanh-activated).
		if l > 0 {
			for i := range nextDelta {
				a := acts[l][i]
				nextDelta[i] *= 1 - a*a
			}
			delta = nextDelta
		}
	}
	n.apply(lr)
	return loss
}

// gradient accumulators for the pending step.
func (n *Net) adamW(l, o, i int, g float64) {
	n.mW[l][o][i] = beta1*n.mW[l][o][i] + (1-beta1)*g
	n.vW[l][o][i] = beta2*n.vW[l][o][i] + (1-beta2)*g*g
}

func (n *Net) adamB(l, o int, g float64) {
	n.mB[l][o] = beta1*n.mB[l][o] + (1-beta1)*g
	n.vB[l][o] = beta2*n.vB[l][o] + (1-beta2)*g*g
}

// apply performs the bias-corrected Adam parameter update.
func (n *Net) apply(lr float64) {
	c1 := 1 - math.Pow(beta1, float64(n.step))
	c2 := 1 - math.Pow(beta2, float64(n.step))
	for l := range n.weights {
		for o := range n.weights[l] {
			for i := range n.weights[l][o] {
				mHat := n.mW[l][o][i] / c1
				vHat := n.vW[l][o][i] / c2
				n.weights[l][o][i] -= lr * mHat / (math.Sqrt(vHat) + eps)
			}
			mHat := n.mB[l][o] / c1
			vHat := n.vB[l][o] / c2
			n.biases[l][o] -= lr * mHat / (math.Sqrt(vHat) + eps)
		}
	}
}

// Fit trains on the dataset for the given number of epochs with
// per-sample Adam updates in a shuffled order, returning the final mean
// epoch loss.
func (n *Net) Fit(rng *rand.Rand, xs, ys [][]float64, epochs int, lr float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("mlp: bad training set")
	}
	var last float64
	for e := 0; e < epochs; e++ {
		perm := rng.Perm(len(xs))
		var sum float64
		for _, i := range perm {
			sum += n.TrainStep(xs[i], ys[i], lr)
		}
		last = sum / float64(len(xs))
	}
	return last
}
