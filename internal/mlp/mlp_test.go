package mlp

import (
	"math"
	"math/rand"
	"testing"

	"mlimp/internal/fixed"
)

func TestConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := New(rng, 3, 16, 8, 1)
	// (3*16+16) + (16*8+8) + (8*1+1) = 64 + 136 + 9 = 209.
	if got := n.NumParams(); got != 209 {
		t.Errorf("NumParams = %d, want 209", got)
	}
	out := n.Forward([]float64{1, 2, 3})
	if len(out) != 1 || math.IsNaN(out[0]) {
		t.Errorf("Forward = %v", out)
	}
}

func TestConstructionPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i, f := range []func(){
		func() { New(rng, 3) },
		func() { New(rng, 3, 0, 1) },
		func() { New(rng, 2, 1).Forward([]float64{1, 2, 3}) },
		func() { New(rng, 2, 1).TrainStep([]float64{1, 2}, []float64{1, 2}, 0.01) },
		func() { New(rng, 2, 1).Fit(rng, nil, nil, 1, 0.01) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := New(rng, 2, 16, 8, 1)
	var xs, ys [][]float64
	for i := 0; i < 200; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		xs = append(xs, []float64{a, b})
		ys = append(ys, []float64{0.5*a - 0.3*b + 0.1})
	}
	loss := n.Fit(rng, xs, ys, 200, 1e-3)
	if loss > 1e-3 {
		t.Errorf("final loss = %v, want < 1e-3", loss)
	}
	got := n.Forward([]float64{0.4, -0.2})[0]
	want := 0.5*0.4 - 0.3*-0.2 + 0.1
	if math.Abs(got-want) > 0.05 {
		t.Errorf("prediction %v, want %v", got, want)
	}
}

func TestLearnsNonlinearFunction(t *testing.T) {
	// The predictor's job is a non-linear regression (Section III-E);
	// the 16/8 architecture must fit a smooth nonlinearity.
	rng := rand.New(rand.NewSource(3))
	n := New(rng, 1, 16, 8, 1)
	var xs, ys [][]float64
	for i := 0; i < 300; i++ {
		x := rng.Float64()*4 - 2
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{math.Sin(x)})
	}
	loss := n.Fit(rng, xs, ys, 300, 2e-3)
	if loss > 5e-3 {
		t.Errorf("final loss = %v", loss)
	}
	for _, x := range []float64{-1.5, -0.5, 0.5, 1.5} {
		got := n.Forward([]float64{x})[0]
		if math.Abs(got-math.Sin(x)) > 0.15 {
			t.Errorf("sin(%v): got %v want %v", x, got, math.Sin(x))
		}
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := New(rng, 2, 8, 1)
	x, y := []float64{0.5, -0.5}, []float64{0.7}
	first := n.TrainStep(x, y, 1e-2)
	var last float64
	for i := 0; i < 100; i++ {
		last = n.TrainStep(x, y, 1e-2)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	build := func() []float64 {
		rng := rand.New(rand.NewSource(7))
		n := New(rng, 2, 16, 8, 1)
		xs := [][]float64{{0.1, 0.2}, {0.3, -0.4}}
		ys := [][]float64{{0.5}, {-0.1}}
		n.Fit(rng, xs, ys, 50, 1e-3)
		return n.Forward([]float64{0.2, 0.2})
	}
	a, b := build(), build()
	if a[0] != b[0] {
		t.Errorf("training not deterministic: %v vs %v", a, b)
	}
}

func TestMultiOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := New(rng, 2, 12, 2)
	var xs, ys [][]float64
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		xs = append(xs, []float64{a, b})
		ys = append(ys, []float64{a + b, a - b})
	}
	n.Fit(rng, xs, ys, 150, 2e-3)
	out := n.Forward([]float64{0.3, 0.6})
	if math.Abs(out[0]-0.9) > 0.1 || math.Abs(out[1]+0.3) > 0.1 {
		t.Errorf("multi-output prediction = %v", out)
	}
}

func TestForwardQuant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := New(rng, 2, 16, 8, 1)
	x := []float64{0.3, -0.2}
	// Nil formats is plain Forward.
	if got, want := n.ForwardQuant(x, nil), n.Forward(x); got[0] != want[0] {
		t.Errorf("nil formats: %v != %v", got, want)
	}
	// Full-width quantisation only snaps to the Q8.8 grid.
	w16 := n.ForwardQuant(x, []fixed.Format{fixed.W16})
	if math.Abs(w16[0]-n.Forward(x)[0]) > 1.0/256 {
		t.Errorf("W16 output %v strayed beyond one Q8.8 ulp", w16)
	}
	// Narrow outputs sit exactly on the W8 grid (1/16 steps).
	w8 := n.ForwardQuant(x, []fixed.Format{fixed.W8})
	if v := w8[0] * 16; v != math.Round(v) {
		t.Errorf("W8 output %v off the 1/16 grid", w8[0])
	}
	// A short format list repeats its last entry for deeper layers.
	mixed := n.ForwardQuant(x, []fixed.Format{fixed.W16, fixed.W8})
	if v := mixed[0] * 16; v != math.Round(v) {
		t.Errorf("tail format not applied: %v", mixed[0])
	}
}
