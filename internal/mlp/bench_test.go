package mlp

import (
	"math/rand"
	"testing"
)

// BenchmarkForward measures predictor inference at the paper's
// regressor shape (two hidden layers of 16 and 8, Section III-E) — the
// call the scheduler makes once per job dispatch, so its cost is pure
// overhead on every scheduling decision.
func BenchmarkForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := New(rng, 8, 16, 8, 1)
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x)
	}
}

// BenchmarkTrainStep measures one Adam update at the same shape — the
// per-sample cost of the per-mother-graph training loop.
func BenchmarkTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := New(rng, 8, 16, 8, 1)
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := []float64{0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.TrainStep(x, y, 1e-3)
	}
}
