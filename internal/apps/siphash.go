package apps

import "encoding/binary"

// SipHash-2-4 reference implementation (Aumasson & Bernstein), the
// message-authentication kernel the paper's Crypto benchmark derives
// from. It is used to validate the ARX round structure the DFG kernel
// mirrors on 16-bit lanes, and by the examples as real workload input.

func sipRound(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = v1<<13 | v1>>(64-13)
	v1 ^= v0
	v0 = v0<<32 | v0>>32
	v2 += v3
	v3 = v3<<16 | v3>>(64-16)
	v3 ^= v2
	v0 += v3
	v3 = v3<<21 | v3>>(64-21)
	v3 ^= v0
	v2 += v1
	v1 = v1<<17 | v1>>(64-17)
	v1 ^= v2
	v2 = v2<<32 | v2>>32
	return v0, v1, v2, v3
}

// SipHash24 computes the 64-bit SipHash-2-4 MAC of msg under a 16-byte
// key.
func SipHash24(key [16]byte, msg []byte) uint64 {
	k0 := binary.LittleEndian.Uint64(key[0:8])
	k1 := binary.LittleEndian.Uint64(key[8:16])
	v0 := k0 ^ 0x736f6d6570736575
	v1 := k1 ^ 0x646f72616e646f6d
	v2 := k0 ^ 0x6c7967656e657261
	v3 := k1 ^ 0x7465646279746573

	full := len(msg) / 8
	for i := 0; i < full; i++ {
		m := binary.LittleEndian.Uint64(msg[i*8:])
		v3 ^= m
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= m
	}
	// Final block: remaining bytes plus the length byte.
	var m uint64
	rest := msg[full*8:]
	for i := len(rest) - 1; i >= 0; i-- {
		m = m<<8 | uint64(rest[i])
	}
	m |= uint64(len(msg)) << 56
	v3 ^= m
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= m

	v2 ^= 0xff
	for i := 0; i < 4; i++ {
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	}
	return v0 ^ v1 ^ v2 ^ v3
}
