// Package apps provides the data-parallel application suite of Table II
// as SIMD DFG kernels: Blackscholes, Fluidanimate, Streamcluster (two
// input sizes), Backprop, Kmeans, Crypto (SipHash rounds), DB (bitmap
// index and full scan), and Bitap. Each App carries its kernel graph,
// the per-job element count and loop count ("each application generates
// multiple jobs with a fixed loop count", Section IV), and the number of
// jobs launched per program instance.
//
// The kernels follow the wide-SIMD execution model of IMP: every lane
// processes one independent element (an option, a point, a neuron, a
// text string, a database row), and the sequential part of the algorithm
// becomes the job's loop count.
package apps

import (
	"fmt"

	"mlimp/internal/dfg"
)

// App describes one benchmark application.
type App struct {
	Name   string
	Domain string
	Kernel *dfg.Graph
	// Elements is the SIMD width of one job (elements processed in
	// lockstep); LoopCount is how many times the kernel body executes
	// per job; Jobs is how many jobs one program launch generates.
	Elements  int
	LoopCount int
	Jobs      int
}

// WorkPerJob returns kernel invocations per job (loop count).
func (a App) WorkPerJob() int64 { return int64(a.LoopCount) }

// String renders the Table II row.
func (a App) String() string {
	return fmt.Sprintf("%-15s %-15s elems=%-8d loops=%-6d jobs=%d",
		a.Name, a.Domain, a.Elements, a.LoopCount, a.Jobs)
}

// blackscholes prices one option per lane with the closed-form model;
// exp2/div-heavy compute (the log/exp/CDF pipeline), favouring fast
// arithmetic memories.
func blackscholes() *dfg.Graph {
	g := dfg.NewGraph("blackscholes")
	s := g.Input("spot")
	k := g.Input("strike")
	t := g.Input("time")
	v := g.Input("vol")
	// d1 = (log2(s/k) + (r + v^2/2) t) / (v sqrt(t)); log2 via exp2
	// inversion is lowered to a division ladder in fixed point.
	ratio := g.Div(s, k)
	logr := g.Sub(g.Exp2(g.Div(ratio, g.ConstFloat(2))), g.ConstFloat(1)) // poly approx
	v2 := g.Mul(v, v)
	drift := g.Mul(g.Add(g.ConstFloat(0.05), g.Div(v2, g.ConstFloat(2))), t)
	sqt := g.Div(g.Add(t, g.ConstFloat(1)), g.ConstFloat(2)) // Newton seed for sqrt
	denom := g.Mul(v, sqt)
	d1 := g.Div(g.Add(logr, drift), denom)
	d2 := g.Sub(d1, denom)
	// CDF approximated with a logistic: 1/(1+2^-1.702x).
	cdf := func(x dfg.NodeID) dfg.NodeID {
		e := g.Exp2(g.Mul(g.ConstFloat(-1.702), x))
		return g.Div(g.ConstFloat(1), g.Add(g.ConstFloat(1), e))
	}
	call := g.Sub(g.Mul(s, cdf(d1)), g.Mul(k, cdf(d2)))
	g.Output(call)
	return g
}

// fluidanimate computes one particle's pairwise density/force kernel:
// distance, smoothing-kernel weights, and a force accumulation.
func fluidanimate() *dfg.Graph {
	g := dfg.NewGraph("fluidanimate")
	dx := g.Input("dx")
	dy := g.Input("dy")
	dz := g.Input("dz")
	h2 := g.ConstFloat(1.0)
	r2 := g.Add(g.Add(g.Mul(dx, dx), g.Mul(dy, dy)), g.Mul(dz, dz))
	diff := g.Max(g.Sub(h2, r2), g.ConstFloat(0))
	w := g.Mul(g.Mul(diff, diff), diff) // (h^2-r^2)^3 smoothing weight
	press := g.Mul(w, g.ConstFloat(0.25))
	g.Output(g.Add(press, g.Mul(w, g.ConstFloat(0.5))))
	return g
}

// streamcluster evaluates one point-to-centre assignment step on
// 16-dimensional points: a squared distance (a 16-pair multi-operand
// dot of the coordinate differences — the analog-friendly intrinsic)
// plus a running-best comparison.
func streamcluster() *dfg.Graph {
	g := dfg.NewGraph("streamcluster")
	const dims = 16
	best := g.Input("best")
	pairs := make([]dfg.NodeID, 0, 2*dims)
	for i := 0; i < dims; i++ {
		x := g.Input(fmt.Sprintf("x%d", i))
		c := g.Input(fmt.Sprintf("c%d", i))
		d := g.Sub(x, c)
		pairs = append(pairs, d, d)
	}
	dist := g.Dot(pairs...)
	better := g.CmpLT(dist, best)
	g.Output(g.Select(better, dist, best))
	return g
}

// backprop is one dense neuron step with fan-in 32: a 32-pair
// multi-operand MAC plus logistic activation and the local gradient
// term. The wide dot is where ReRAM's analog Kirchhoff accumulation
// shines (one crossbar access versus 32 sequential bit-serial MACs).
func backprop() *dfg.Graph {
	g := dfg.NewGraph("backprop")
	const fanIn = 32
	pairs := make([]dfg.NodeID, 0, 2*fanIn)
	for i := 0; i < fanIn; i++ {
		pairs = append(pairs, g.Input(fmt.Sprintf("x%d", i)), g.Input(fmt.Sprintf("w%d", i)))
	}
	acc := g.Dot(pairs...)
	e := g.Exp2(g.Mul(g.ConstFloat(-1.4427), acc)) // 2^(-x/ln2) = e^-x
	act := g.Div(g.ConstFloat(1), g.Add(g.ConstFloat(1), e))
	grad := g.Mul(act, g.Sub(g.ConstFloat(1), act))
	g.Output(grad)
	return g
}

// kmeans is the assignment step against two candidate centres with a
// running argmin.
func kmeans() *dfg.Graph {
	g := dfg.NewGraph("kmeans")
	x := g.Input("x")
	c1 := g.Input("c1")
	c2 := g.Input("c2")
	d1 := g.Sub(x, c1)
	d2 := g.Sub(x, c2)
	s1 := g.Mul(d1, d1)
	s2 := g.Mul(d2, d2)
	g.Output(g.Select(g.CmpLT(s1, s2), g.ConstFloat(0), g.ConstFloat(1)))
	return g
}

// crypto is one SipRound of the SipHash ARX core on 16-bit lanes:
// add / rotate / xor — bulk bitwise and addition, the pattern in-DRAM
// computing is best at. (The full 64-bit SipHash-2-4 reference lives in
// siphash.go and validates the round structure.)
func crypto() *dfg.Graph {
	g := dfg.NewGraph("crypto")
	v0 := g.Input("v0")
	v1 := g.Input("v1")
	v2 := g.Input("v2")
	v3 := g.Input("v3")
	rotl := func(x dfg.NodeID, r int) dfg.NodeID {
		return g.Or(g.Shl(x, r), g.Shr(x, 16-r))
	}
	a0 := g.Add(v0, v1)
	b1 := g.Xor(rotl(v1, 5), a0)
	a2 := g.Add(v2, v3)
	b3 := g.Xor(rotl(v3, 8), a2)
	c0 := g.Add(a0, b3)
	c2 := g.Add(a2, b1)
	g.Output(g.Xor(rotl(b1, 13), c2))
	g.Output(g.Xor(rotl(b3, 7), c0))
	return g
}

// dbBitmap is a bitmap-index query: AND/OR/NOT across index bitmaps —
// pure bulk bitwise work.
func dbBitmap() *dfg.Graph {
	g := dfg.NewGraph("db-bitmap")
	a := g.Input("idxA")
	b := g.Input("idxB")
	c := g.Input("idxC")
	g.Output(g.And(g.Or(a, b), g.Not(c)))
	return g
}

// dbScan is a full-scan predicate: range comparison per row with a
// conjunctive filter.
func dbScan() *dfg.Graph {
	g := dfg.NewGraph("db-scan")
	col := g.Input("col")
	lo := g.Input("lo")
	hi := g.Input("hi")
	ge := g.Not(g.CmpLT(col, lo))
	lt := g.CmpLT(col, hi)
	g.Output(g.And(ge, lt))
	return g
}

// bitap is one step of the Bitap (shift-or) string-search automaton:
// R = ((R << 1) | 1) & mask[c]. One text string per lane; the loop count
// is the text length. (The scalar reference lives in bitap.go.)
func bitap() *dfg.Graph {
	g := dfg.NewGraph("bitap")
	r := g.Input("state")
	mask := g.Input("mask")
	g.Output(g.And(g.Or(g.Shl(r, 1), g.Const(1)), mask))
	return g
}

// Suite returns the Table II applications. Streamcluster appears with
// its two input sizes (A and B) and DB with its two algorithms (bitmap
// index B and full scan S), exactly as the paper's combination table
// references them.
func Suite() []App {
	return []App{
		{Name: "blackscholes", Domain: "finance", Kernel: blackscholes(), Elements: 1 << 20, LoopCount: 64, Jobs: 8},
		{Name: "fluidanimate", Domain: "fluid dynamics", Kernel: fluidanimate(), Elements: 1 << 21, LoopCount: 128, Jobs: 8},
		{Name: "streamclusterA", Domain: "data mining", Kernel: streamcluster(), Elements: 1 << 18, LoopCount: 256, Jobs: 8},
		{Name: "streamclusterB", Domain: "data mining", Kernel: streamcluster(), Elements: 1 << 24, LoopCount: 256, Jobs: 8},
		{Name: "backprop", Domain: "pattern recog", Kernel: backprop(), Elements: 1 << 23, LoopCount: 96, Jobs: 8},
		{Name: "kmeans", Domain: "data mining", Kernel: kmeans(), Elements: 1 << 20, LoopCount: 192, Jobs: 8},
		{Name: "crypto", Domain: "message auth", Kernel: crypto(), Elements: 1 << 26, LoopCount: 32, Jobs: 8},
		{Name: "dbB", Domain: "database", Kernel: dbBitmap(), Elements: 1 << 27, LoopCount: 16, Jobs: 8},
		{Name: "dbS", Domain: "database", Kernel: dbScan(), Elements: 1 << 26, LoopCount: 24, Jobs: 8},
		{Name: "bitap", Domain: "string search", Kernel: bitap(), Elements: 1 << 25, LoopCount: 256, Jobs: 8},
	}
}

// ByName returns the suite entry with the given name.
func ByName(name string) (App, bool) {
	for _, a := range Suite() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}
