package apps

import (
	"fmt"
	"strings"
	"testing"

	"mlimp/internal/dfg"
	"mlimp/internal/fixed"
	"mlimp/internal/isa"
)

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	// Table II: 8 applications, with streamcluster split into A/B input
	// sizes and DB into bitmap/scan algorithms -> 10 entries.
	if len(suite) != 10 {
		t.Fatalf("suite size = %d, want 10", len(suite))
	}
	names := map[string]bool{}
	for _, a := range suite {
		names[a.Name] = true
		if a.Elements <= 0 || a.LoopCount <= 0 || a.Jobs <= 0 {
			t.Errorf("%s: bad job parameters", a.Name)
		}
		if err := a.Kernel.Validate(); err != nil {
			t.Errorf("%s: invalid kernel: %v", a.Name, err)
		}
		if a.String() == "" || a.WorkPerJob() != int64(a.LoopCount) {
			t.Errorf("%s: accessors wrong", a.Name)
		}
	}
	for _, want := range []string{"blackscholes", "fluidanimate", "streamclusterA",
		"streamclusterB", "backprop", "kmeans", "crypto", "dbB", "dbS", "bitap"} {
		if !names[want] {
			t.Errorf("missing app %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	if a, ok := ByName("kmeans"); !ok || a.Name != "kmeans" {
		t.Error("ByName failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus lookup should fail")
	}
}

func TestEveryKernelCompilesForEveryTarget(t *testing.T) {
	for _, a := range Suite() {
		ps, err := isa.CompileAll(a.Kernel)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for tgt, p := range ps {
			if p.Cycles <= 0 {
				t.Errorf("%s@%s: non-positive cycles", a.Name, tgt)
			}
		}
	}
}

func TestInstructionMixDrivesPreference(t *testing.T) {
	// Bulk-bitwise kernels (db bitmap, bitap, crypto) must be cheap
	// relative to arithmetic-heavy kernels (blackscholes, backprop) on
	// every target — the preference in Figure 17 comes from the ratio
	// of these costs across targets, not from hard-coding.
	ps := func(name string) map[isa.Target]*isa.Program {
		a, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		m, err := isa.CompileAll(a.Kernel)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	bs := ps("blackscholes")
	db := ps("dbB")
	for _, tgt := range isa.Targets {
		if bs[tgt].Cycles <= db[tgt].Cycles {
			t.Errorf("%s: blackscholes (%d) should out-cost db bitmap (%d)",
				tgt, bs[tgt].Cycles, db[tgt].Cycles)
		}
	}
	// Division/exp2-free bitwise kernels suffer least from DRAM's slow
	// bit-serial steps: the DRAM/SRAM cycle ratio is the flat 5x there,
	// while the wall-clock preference comes from DRAM's huge parallelism.
	if r := float64(db[isa.DRAM].Cycles) / float64(db[isa.SRAM].Cycles); r != 5 {
		t.Errorf("db bitmap DRAM/SRAM cycle ratio = %v, want exactly 5", r)
	}
}

func TestBlackscholesProducesFiniteValues(t *testing.T) {
	a, _ := ByName("blackscholes")
	in := map[string][]fixed.Num{
		"spot":   {fixed.FromFloat(10)},
		"strike": {fixed.FromFloat(8)},
		"time":   {fixed.FromFloat(1)},
		"vol":    {fixed.FromFloat(0.3)},
	}
	outs, err := a.Kernel.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	call := outs[0][0].Float()
	// In-the-money call on spot 10 / strike 8 must be worth something
	// but less than the spot.
	if call <= 0 || call >= 10 {
		t.Errorf("call price = %v, not plausible", call)
	}
}

func TestKmeansPicksNearerCentre(t *testing.T) {
	a, _ := ByName("kmeans")
	outs, err := a.Kernel.Run(map[string][]fixed.Num{
		"x":  {fixed.FromFloat(1), fixed.FromFloat(9)},
		"c1": {fixed.FromFloat(0), fixed.FromFloat(0)},
		"c2": {fixed.FromFloat(10), fixed.FromFloat(10)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0][0].Float() != 0 || outs[0][1].Float() != 1 {
		t.Errorf("assignments = %v, %v", outs[0][0].Float(), outs[0][1].Float())
	}
}

func TestStreamclusterKeepsBest(t *testing.T) {
	a, _ := ByName("streamclusterA")
	in := map[string][]fixed.Num{"best": {fixed.FromFloat(7)}}
	// Point at distance 3 on dim 0 and 4 on dim 1 from the centre:
	// squared distance 25 > best 7, so best is kept.
	for i := 0; i < 16; i++ {
		in[fmt.Sprintf("x%d", i)] = []fixed.Num{0}
		in[fmt.Sprintf("c%d", i)] = []fixed.Num{0}
	}
	in["x0"] = []fixed.Num{fixed.FromFloat(3)}
	in["x1"] = []fixed.Num{fixed.FromFloat(4)}
	outs, err := a.Kernel.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0][0].Float() != 7 {
		t.Errorf("best = %v, want 7", outs[0][0].Float())
	}
	// A closer point updates the best: distance 1 < 7.
	in["x0"] = []fixed.Num{fixed.FromFloat(1)}
	in["x1"] = []fixed.Num{0}
	outs, err = a.Kernel.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0][0].Float() != 1 {
		t.Errorf("updated best = %v, want 1", outs[0][0].Float())
	}
}

func TestDBScanPredicate(t *testing.T) {
	a, _ := ByName("dbS")
	outs, err := a.Kernel.Run(map[string][]fixed.Num{
		"col": {fixed.FromInt(5), fixed.FromInt(1), fixed.FromInt(9)},
		"lo":  {fixed.FromInt(2), fixed.FromInt(2), fixed.FromInt(2)},
		"hi":  {fixed.FromInt(8), fixed.FromInt(8), fixed.FromInt(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 256, 0, 0} // raw bit 1 where in range
	for i, w := range want {
		if outs[0][i].Float() != w {
			t.Errorf("row %d predicate = %v, want %v", i, outs[0][i].Float(), w)
		}
	}
}

func TestBitapDFGStepMatchesReference(t *testing.T) {
	// Drive the DFG one character at a time and compare against the
	// scalar bitap automaton.
	a, _ := ByName("bitap")
	text, pattern := "abracadabra", "cad"
	masks := BitapMasks(pattern)
	var r uint16
	state := fixed.Num(0)
	for i := 0; i < len(text); i++ {
		r = ((r << 1) | 1) & masks[text[i]]
		outs, err := a.Kernel.Run(map[string][]fixed.Num{
			"state": {state},
			"mask":  {fixed.Num(masks[text[i]])},
		})
		if err != nil {
			t.Fatal(err)
		}
		state = outs[0][0]
		if uint16(state) != r {
			t.Fatalf("step %d: DFG state %04x != reference %04x", i, uint16(state), r)
		}
	}
}

func TestBitapSearch(t *testing.T) {
	if got := BitapSearch("abracadabra", "cad"); got != 4 {
		t.Errorf("BitapSearch = %d, want 4", got)
	}
	if got := BitapSearch("hello", "xyz"); got != -1 {
		t.Errorf("miss = %d, want -1", got)
	}
	if got := BitapSearch("aaa", "aaa"); got != 0 {
		t.Errorf("full match = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("long pattern should panic")
		}
	}()
	BitapMasks(strings.Repeat("x", 17))
}

func TestSipHashKnownVector(t *testing.T) {
	// Reference vector from the SipHash paper (Appendix A): key
	// 000102...0f, message 000102...0e -> 0xa129ca6149be45e5.
	var key [16]byte
	for i := range key {
		key[i] = byte(i)
	}
	msg := make([]byte, 15)
	for i := range msg {
		msg[i] = byte(i)
	}
	if got := SipHash24(key, msg); got != 0xa129ca6149be45e5 {
		t.Errorf("SipHash24 = %#x, want 0xa129ca6149be45e5", got)
	}
}

func TestSipHashEmptyAndBlockBoundary(t *testing.T) {
	var key [16]byte
	for i := range key {
		key[i] = byte(i)
	}
	// Vectors from the reference implementation's test file.
	if got := SipHash24(key, nil); got != 0x726fdb47dd0e0e31 {
		t.Errorf("empty = %#x", got)
	}
	msg8 := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	if got := SipHash24(key, msg8); got != 0x93f5f5799a932462 {
		t.Errorf("8-byte = %#x", got)
	}
}

func TestCryptoKernelIsARX(t *testing.T) {
	a, _ := ByName("crypto")
	mix := a.Kernel.Mix()
	if mix[dfg.OpAdd] == 0 || mix[dfg.OpXor] == 0 || mix[dfg.OpShl] == 0 {
		t.Errorf("crypto kernel should be add/rotate/xor, mix = %v", mix)
	}
	if mix[dfg.OpMul] != 0 || mix[dfg.OpDiv] != 0 {
		t.Error("crypto kernel must not use mul/div")
	}
}
