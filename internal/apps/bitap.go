package apps

// Bitap (shift-or / Baeza-Yates–Gonnet) exact string search, the
// bioinformatics kernel of Table II. BitapSearch is the scalar reference
// for the per-step DFG kernel: the automaton state update
// R = ((R << 1) | 1) & mask[c] runs once per text character, which is
// why the bitap App's loop count is the text length.

// BitapMasks precomputes the per-character match masks for a pattern of
// length <= 16 (the lane width of the DFG kernel).
func BitapMasks(pattern string) [256]uint16 {
	if len(pattern) == 0 || len(pattern) > 16 {
		panic("apps: bitap pattern must be 1..16 bytes")
	}
	var masks [256]uint16
	for i := range masks {
		masks[i] = 0
	}
	for i := 0; i < len(pattern); i++ {
		masks[pattern[i]] |= 1 << uint(i)
	}
	return masks
}

// BitapSearch returns the index of the first occurrence of pattern in
// text, or -1. It uses the shift-AND formulation matching the DFG
// kernel's step.
func BitapSearch(text, pattern string) int {
	masks := BitapMasks(pattern)
	goal := uint16(1) << uint(len(pattern)-1)
	var r uint16
	for i := 0; i < len(text); i++ {
		r = ((r << 1) | 1) & masks[text[i]]
		if r&goal != 0 {
			return i - len(pattern) + 1
		}
	}
	return -1
}
