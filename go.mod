module mlimp

go 1.22
