// Package main_test is the benchmark harness of the reproduction: one
// testing.B benchmark per table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index), plus the ablation benches.
// Each benchmark regenerates the corresponding artefact through
// internal/experiments; run
//
//	go test -bench=. -benchmem
//
// to reproduce everything, or cmd/mlimp-bench to get the artefacts as
// text.
package main_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mlimp/internal/cluster"
	"mlimp/internal/event"
	"mlimp/internal/experiments"
	"mlimp/internal/fault"
	"mlimp/internal/gnn"
	"mlimp/internal/graph"
	"mlimp/internal/isa"
	"mlimp/internal/predict"
	"mlimp/internal/runtime"
	"mlimp/internal/sched"
	"mlimp/internal/serve"
	"mlimp/internal/workload"
)

// run executes one registered experiment b.N times, reporting its
// artefact size so accidental truncation is visible in benchmark diffs.
func run(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var bytes int
	for i := 0; i < b.N; i++ {
		res := e.Run()
		bytes = len(res.Text)
		if bytes == 0 {
			b.Fatalf("%s produced an empty artefact", id)
		}
	}
	b.ReportMetric(float64(bytes), "artefact-bytes")
}

func BenchmarkFig01_TechnologyCharacteristics(b *testing.B) { run(b, "fig01") }
func BenchmarkFig05_SubgraphDistribution(b *testing.B)      { run(b, "fig05") }
func BenchmarkFig10_NaiveClassifier(b *testing.B)           { run(b, "fig10") }
func BenchmarkFig11_KernelSpeedup(b *testing.B)             { run(b, "fig11") }
func BenchmarkFig12_DeviceMixBreakdown(b *testing.B)        { run(b, "fig12") }
func BenchmarkFig13_ApplicationBreakdown(b *testing.B)      { run(b, "fig13") }
func BenchmarkFig14_Energy(b *testing.B)                    { run(b, "fig14") }
func BenchmarkFig15_SchedulerPredictor(b *testing.B)        { run(b, "fig15") }
func BenchmarkFig16_OracleFraction(b *testing.B)            { run(b, "fig16") }
func BenchmarkFig17_AppKernelTimes(b *testing.B)            { run(b, "fig17") }
func BenchmarkFig18_Multiprogramming(b *testing.B)          { run(b, "fig18") }
func BenchmarkFig19_SchedulerComparison(b *testing.B)       { run(b, "fig19") }
func BenchmarkTab1_Datasets(b *testing.B)                   { run(b, "tab1") }
func BenchmarkTab2_AppCombinations(b *testing.B)            { run(b, "tab2") }
func BenchmarkTab3_Configurations(b *testing.B)             { run(b, "tab3") }
func BenchmarkStress_PredictorNoise(b *testing.B)           { run(b, "stress") }
func BenchmarkModel_ScaleFreeFit(b *testing.B)              { run(b, "scalefit") }
func BenchmarkPredictor_Accuracy(b *testing.B)              { run(b, "predacc") }
func BenchmarkAblation_ReuseModel(b *testing.B)             { run(b, "abl-reuse") }
func BenchmarkAblation_KneeAllocation(b *testing.B)         { run(b, "abl-knee") }
func BenchmarkAblation_Replication(b *testing.B)            { run(b, "abl-replica") }
func BenchmarkAblation_InterQueueEpsilon(b *testing.B)      { run(b, "abl-epsilon") }
func BenchmarkAblation_Compiler(b *testing.B)               { run(b, "abl-compiler") }
func BenchmarkExtension_Serving(b *testing.B)               { run(b, "serving") }
func BenchmarkExtension_ServingNode(b *testing.B)           { run(b, "serving-node") }
func BenchmarkExtension_Quantization(b *testing.B)          { run(b, "quant") }
func BenchmarkExtension_Cluster(b *testing.B)               { run(b, "cluster") }
func BenchmarkExtension_Faults(b *testing.B)                { run(b, "faults") }
func BenchmarkExtension_MultiTenant(b *testing.B)           { run(b, "multitenant") }
func BenchmarkExtension_Partition(b *testing.B)             { run(b, "partition") }
func BenchmarkExtension_Replication(b *testing.B)           { run(b, "replication") }

// BenchmarkReplicatedPipeline measures the replicate-when-idle policy
// on its target case: a staged GNN batch whose bottleneck SpMM layer
// serialises on one memory while arrays idle. Setup schedules the same
// batch with replication off and asserts the policy's contract — the
// replicated schedule completes in measurably fewer model cycles — then
// the timed loop measures the replicated scheduling path itself.
func BenchmarkReplicatedPipeline(b *testing.B) {
	d, ok := graph.DatasetByName("ogbl-collab")
	if !ok {
		b.Fatal("dataset missing")
	}
	rng := rand.New(rand.NewSource(910))
	m := gnn.NewGCN(rng, d.InputFeat, d.HiddenFeat, 3)
	w := gnn.BuildWorkload(rng, d, m, 2, 16)

	base := sched.NewSystem(isa.Targets...)
	baseRes := sched.NewGlobal().Schedule(base, w.AllJobs(predict.Oracle{}, base))

	sys := sched.NewSystem(isa.Targets...)
	sys.Replication = sched.ReplicateWhenIdle
	jobs := w.AllJobs(predict.Oracle{}, sys)
	sc := sched.NewGlobal()
	rep := sc.Schedule(sys, jobs)
	if rep.Makespan >= baseRes.Makespan {
		b.Fatalf("replicated makespan %v not faster than baseline %v",
			rep.Makespan, baseRes.Makespan)
	}
	b.ReportMetric(float64(baseRes.Makespan)/float64(rep.Makespan), "speedup")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sc.Schedule(sys, jobs)
		if len(res.Assignments) != len(jobs) {
			b.Fatalf("completed %d of %d jobs", len(res.Assignments), len(jobs))
		}
	}
}

// BenchmarkMultiTenantSchedule measures the array-set scheduler on one
// dense mixed-tenant batch: 32 jobs across 4 tenants packed weighted-
// fair on a full node — the multi-tenant analogue of the Fig. 19
// scheduling hot path. The job set is built once and is read-only to
// the scheduler, so iterations measure placement, not generation.
func BenchmarkMultiTenantSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	sys := sched.NewSystem(isa.Targets...)
	sys.Packing = sched.PackWeightedFair
	jobs := workload.AssignTenants(workload.RandomJobs(rng, 32, 0), 4)
	sc := sched.NewGlobal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sc.Schedule(sys, jobs)
		if len(res.Assignments) != len(jobs) {
			b.Fatalf("completed %d of %d jobs", len(res.Assignments), len(jobs))
		}
	}
}

// BenchmarkServeFrontend drives the open-loop request front end — the
// arrival/batch-former/admission hot path of internal/serve — over a
// fixed app-request trace on the heterogeneous fleet. The request trace
// is built once and is read-only to the front end, so iterations
// measure the serving path, not workload generation.
func BenchmarkServeFrontend(b *testing.B) {
	sys := sched.NewSystem(isa.Targets...)
	src := serve.NewAppSource(sys)
	rng := rand.New(rand.NewSource(17))
	arr := serve.Trace(rng, serve.Poisson{MeanGap: 100 * event.Microsecond},
		0, 20*event.Millisecond)
	reqs := src.Requests(rng, arr, 10*event.Millisecond)
	cfgs := []cluster.NodeConfig{
		{Name: "full", Targets: isa.Targets},
		{Name: "sram-dram", Targets: []isa.Target{isa.SRAM, isa.DRAM}},
		{Name: "dram-reram", Targets: []isa.Target{isa.DRAM, isa.ReRAM}},
		{Name: "reram", Targets: []isa.Target{isa.ReRAM}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cluster.NewShardedDispatcher(cluster.NewPredictedCost(), cluster.Admission{MaxRetries: 1},
			cluster.ShardConfig{Workers: 1}, cfgs...)
		fe, err := serve.New(d, serve.Config{
			Requests: reqs, Budget: 200 * event.Microsecond, BatchMax: 4,
			PredictorAdmission: true, BuildJob: src.BuildJob, Seed: 17,
		})
		if err != nil {
			b.Fatal(err)
		}
		if s := fe.Run(); s.Accounted() != s.Requests {
			b.Fatalf("accounted %d of %d requests", s.Accounted(), s.Requests)
		}
	}
}

// BenchmarkPartitionRecovery measures one full region-failover cycle on
// a two-region tree: the region-1 hub freezes mid-run, region 0
// suspects it off the beacon grid, adopts its nodes, and the revival
// sweep re-dispatches whatever the freeze stranded. The workload is
// built once and is read-only to the fabric, so iterations measure
// suspicion, takeover, and recovery — not workload generation.
func BenchmarkPartitionRecovery(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var batches []*runtime.Batch
	for i := 0; i < 30; i++ {
		batches = append(batches, &runtime.Batch{ID: i,
			Arrival: event.Time(i) * 200 * event.Microsecond,
			Jobs:    workload.RandomJobs(rng, 4, i*100)})
	}
	cfgs := make([]cluster.NodeConfig, 4)
	for i := range cfgs {
		cfgs[i] = cluster.NodeConfig{Name: fmt.Sprintf("node%d", i), Targets: isa.Targets}
	}
	plan := &fault.Plan{
		Seed:       5,
		HubCrashes: []fault.HubCrash{{Region: 1, At: event.Millisecond, Recover: 4 * event.Millisecond}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cluster.NewShardedDispatcher(cluster.NewLeastOutstanding(),
			cluster.Admission{MaxRetries: 6},
			cluster.ShardConfig{Workers: 1, Hubs: 2, SummaryEvery: 500 * event.Microsecond},
			cfgs...)
		if err := d.EnableFaults(cluster.FaultConfig{Plan: plan,
			Deadline: 5 * event.Millisecond}); err != nil {
			b.Fatal(err)
		}
		for _, bt := range batches {
			if err := d.Submit(bt); err != nil {
				b.Fatal(err)
			}
		}
		s := d.Run()
		if s.Accounted() != s.Submitted {
			b.Fatalf("conservation broken: %+v", s)
		}
		if s.HubCrashes != 1 || s.Takeovers == 0 {
			b.Fatalf("failover cycle missing: crashes=%d takeovers=%d", s.HubCrashes, s.Takeovers)
		}
	}
}

// fleetBatches builds the wave-synchronous workload for the shard-sweep
// bench: waves of one heavy batch per node arriving at the same
// instant, so every wave's dispatches land in one simulation window and
// the per-node Algorithm-2 scheduling passes — the dominant per-event
// work — can run on all node shards concurrently. Built once; batches
// and jobs are read-only to the fabric, so iterations share them.
func fleetBatches(nodes, waves, jobsPerBatch int) []*runtime.Batch {
	rng := rand.New(rand.NewSource(42))
	var batches []*runtime.Batch
	id := 0
	for w := 0; w < waves; w++ {
		at := event.Time(w) * 60 * event.Millisecond
		for n := 0; n < nodes; n++ {
			batches = append(batches, &runtime.Batch{ID: id, Arrival: at,
				Jobs: workload.RandomJobs(rng, jobsPerBatch, id*100)})
			id++
		}
	}
	return batches
}

// benchFleet drives a homogeneous fleet through the sharded dispatcher
// at the given worker count and hub topology — the ISSUE 5/8 speedup
// benchmarks. least-outstanding keeps the hubs estimate-free, so all
// scheduling work lives on the node shards where the workers can reach
// it; artefacts are byte-identical across worker counts (asserted
// against the serial run's completion count).
func benchFleet(b *testing.B, nodes, hubs, waves, jobsPerBatch, workers int) {
	batches := fleetBatches(nodes, waves, jobsPerBatch)
	cfgs := make([]cluster.NodeConfig, nodes)
	for i := range cfgs {
		cfgs[i] = cluster.NodeConfig{Name: fmt.Sprintf("node%d", i), Targets: isa.Targets}
	}
	// Beacons on the wave cadence: belief exchange stays off the
	// dispatch fast path and completion echoes ride the same grid.
	sc := cluster.ShardConfig{Workers: workers, Hubs: hubs,
		SummaryEvery: 60 * event.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	var avgActive float64
	for i := 0; i < b.N; i++ {
		d := cluster.NewShardedDispatcher(cluster.NewLeastOutstanding(), cluster.Admission{},
			sc, cfgs...)
		for _, bt := range batches {
			if err := d.Submit(bt); err != nil {
				b.Fatal(err)
			}
		}
		if s := d.Run(); s.Completed != len(batches) {
			b.Fatalf("completed %d of %d", s.Completed, len(batches))
		}
		avgActive = d.WindowStats().AvgActive()
	}
	// Available parallelism per window — the speedup bound a host with
	// enough cores can realise at this worker count.
	b.ReportMetric(avgActive, "avg-active-shards")
}

// benchFleetShards is the 8-node sweep, now routed through a hub tree
// (one sub-hub per node) so per-window parallelism tracks fleet size.
func benchFleetShards(b *testing.B, workers int) {
	benchFleet(b, 8, 8, 10, 8, workers)
}

func BenchmarkFleetShards_J1(b *testing.B) { benchFleetShards(b, 1) }
func BenchmarkFleetShards_J2(b *testing.B) { benchFleetShards(b, 2) }
func BenchmarkFleetShards_J4(b *testing.B) { benchFleetShards(b, 4) }
func BenchmarkFleetShards_J8(b *testing.B) { benchFleetShards(b, 8) }

// benchFleetShards64 is the 64-node hub-bottleneck sweep the tree was
// built for: 32 sub-hubs of 2 nodes, fewer waves to keep iterations
// affordable at 8x the fleet.
func benchFleetShards64(b *testing.B, workers int) {
	benchFleet(b, 64, 32, 4, 6, workers)
}

func BenchmarkFleetShards64_J1(b *testing.B) { benchFleetShards64(b, 1) }
func BenchmarkFleetShards64_J4(b *testing.B) { benchFleetShards64(b, 4) }
func BenchmarkFleetShards64_J8(b *testing.B) { benchFleetShards64(b, 8) }
