// Package main_test is the benchmark harness of the reproduction: one
// testing.B benchmark per table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index), plus the ablation benches.
// Each benchmark regenerates the corresponding artefact through
// internal/experiments; run
//
//	go test -bench=. -benchmem
//
// to reproduce everything, or cmd/mlimp-bench to get the artefacts as
// text.
package main_test

import (
	"testing"

	"mlimp/internal/experiments"
)

// run executes one registered experiment b.N times, reporting its
// artefact size so accidental truncation is visible in benchmark diffs.
func run(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var bytes int
	for i := 0; i < b.N; i++ {
		res := e.Run()
		bytes = len(res.Text)
		if bytes == 0 {
			b.Fatalf("%s produced an empty artefact", id)
		}
	}
	b.ReportMetric(float64(bytes), "artefact-bytes")
}

func BenchmarkFig01_TechnologyCharacteristics(b *testing.B) { run(b, "fig01") }
func BenchmarkFig05_SubgraphDistribution(b *testing.B)      { run(b, "fig05") }
func BenchmarkFig10_NaiveClassifier(b *testing.B)           { run(b, "fig10") }
func BenchmarkFig11_KernelSpeedup(b *testing.B)             { run(b, "fig11") }
func BenchmarkFig12_DeviceMixBreakdown(b *testing.B)        { run(b, "fig12") }
func BenchmarkFig13_ApplicationBreakdown(b *testing.B)      { run(b, "fig13") }
func BenchmarkFig14_Energy(b *testing.B)                    { run(b, "fig14") }
func BenchmarkFig15_SchedulerPredictor(b *testing.B)        { run(b, "fig15") }
func BenchmarkFig16_OracleFraction(b *testing.B)            { run(b, "fig16") }
func BenchmarkFig17_AppKernelTimes(b *testing.B)            { run(b, "fig17") }
func BenchmarkFig18_Multiprogramming(b *testing.B)          { run(b, "fig18") }
func BenchmarkFig19_SchedulerComparison(b *testing.B)       { run(b, "fig19") }
func BenchmarkTab1_Datasets(b *testing.B)                   { run(b, "tab1") }
func BenchmarkTab2_AppCombinations(b *testing.B)            { run(b, "tab2") }
func BenchmarkTab3_Configurations(b *testing.B)             { run(b, "tab3") }
func BenchmarkStress_PredictorNoise(b *testing.B)           { run(b, "stress") }
func BenchmarkModel_ScaleFreeFit(b *testing.B)              { run(b, "scalefit") }
func BenchmarkPredictor_Accuracy(b *testing.B)              { run(b, "predacc") }
func BenchmarkAblation_ReuseModel(b *testing.B)             { run(b, "abl-reuse") }
func BenchmarkAblation_KneeAllocation(b *testing.B)         { run(b, "abl-knee") }
func BenchmarkAblation_Replication(b *testing.B)            { run(b, "abl-replica") }
func BenchmarkAblation_InterQueueEpsilon(b *testing.B)      { run(b, "abl-epsilon") }
func BenchmarkAblation_Compiler(b *testing.B)               { run(b, "abl-compiler") }
func BenchmarkExtension_Serving(b *testing.B)               { run(b, "serving") }
func BenchmarkExtension_Quantization(b *testing.B)          { run(b, "quant") }
func BenchmarkExtension_Cluster(b *testing.B)               { run(b, "cluster") }
